"""End-to-end crash-injection harness with a differential oracle.

``run_crashtest`` drives one (workload, design) cell through ``N``
seeded crash points: generate the traced run once, measure the design's
clean cycle horizon, then for each schedule crash the timing simulator
mid-run, materialise the machine-state durable frontier into a PM image,
run undo/redo recovery and check the workload's invariants.

``run_differential`` replays the *same* fractional crash schedules
across all five hardware designs.  The four correct designs must recover
on every sample; NON-ATOMIC must violate an invariant at least once —
the harness treats a NON-ATOMIC run with zero violations as a failure,
because it means the checker lost its teeth.

Every failure message echoes the master seed, the per-sample fault seed
and the concrete trigger so the exact crash replays verbatim from the
CLI (``python -m repro crashtest ...``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis import analyze
from repro.chaos.image import ImageInfo, build_crash_image
from repro.chaos.plan import (
    DEFAULT_DROP_PROB,
    DEFAULT_WRITEBACK_PROB,
    CrashSchedule,
    FaultPlan,
    sample_schedules,
)
from repro.core.model import PersistDag
from repro.faults.recovery import CrashingRecoveryWriter, RecoveryCrashed
from repro.lang.recovery import RecoveryReport, recover
from repro.sim.config import TABLE_I, MachineConfig
from repro.sim.machine import DESIGNS, Machine
from repro.workloads import (
    WORKLOADS,
    CheckFailure,
    WorkloadConfig,
    generate_for_design,
)

#: default workload scale for crash testing: small enough that one cell
#: (horizon run + N crash replays) finishes in seconds, large enough for
#: cross-thread lock hand-offs and log wrap behaviour to appear.
CHAOS_CFG = WorkloadConfig(
    n_threads=4, ops_per_thread=12, log_entries=2048, pm_size=1 << 20
)


@dataclass
class CrashSample:
    """Outcome of one injected crash."""

    index: int
    design: str
    plan: FaultPlan
    cycle: float  #: simulated cycle the machine stopped at
    info: ImageInfo
    n_rolled_back: int
    n_replayed: int
    occupancy: Dict[str, object]
    violation: Optional[str] = None  #: failure message, None on success
    #: recovery passes run (1 + crashes injected inside recovery).
    recovery_passes: int = 1
    #: media fault/retry accounting from the run, when a model was active.
    media_faults: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None


class CrashHarness:
    """One (workload, design) cell prepared for repeated crash injection."""

    def __init__(
        self,
        workload: str,
        design: str,
        cfg: Optional[WorkloadConfig] = None,
        machine_cfg: MachineConfig = TABLE_I,
    ) -> None:
        if workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}"
            )
        if design not in DESIGNS:
            raise ValueError(
                f"unknown design {design!r}; choose from {sorted(DESIGNS)}"
            )
        self.workload_name = workload
        self.design = design
        self.cfg = cfg or CHAOS_CFG
        self.machine_cfg = machine_cfg
        # Crash tests use the conservative commit-durable-before-hand-off
        # model variant, matching the DAG-level crash-consistency tests.
        self.run = generate_for_design(
            WORKLOADS[workload], self.cfg, design, "txn", durable_commit=True
        )
        self.dag = PersistDag(self.run.program)
        # Static pre-flight: the linter's ERROR findings and the
        # differential oracle must agree — a correct design lints clean
        # and recovers; NON-ATOMIC lints dirty and violates invariants.
        self.lint = analyze(self.run.program, design=design)
        baseline = Machine(design, machine_cfg).run(self.run.program)
        #: clean-run cycle count: the horizon fractional schedules scale to.
        self.horizon = float(baseline.cycles)
        self.total_ops = sum(len(t) for t in self.run.program.threads)

    def crash_once(self, plan: FaultPlan, index: int = 0) -> CrashSample:
        """Crash under ``plan``, recover, check; returns the sample.

        When the plan schedules crashes *during* recovery, each scheduled
        crash kills one recovery pass at its seeded write budget, the
        torn intermediate image is materialised, and recovery re-runs —
        the pass after the last scheduled crash completes normally.
        """
        stats = Machine(self.design, self.machine_cfg).run(
            self.run.program, fault_plan=plan
        )
        crash = stats.crash
        assert crash is not None  # run() always attaches one under a plan
        image, info = build_crash_image(self.run, crash, plan, self.dag)
        report, passes = self._recover_with_crashes(image, plan)
        violation: Optional[str] = None
        try:
            self.run.check_image(image)
        except CheckFailure as exc:
            violation = (
                f"{self.workload_name}/{self.design}: invariant violated "
                f"after crash [{plan.describe()}] at cycle {crash.cycle:g} "
                f"({len(crash.durable)} durable, {info.n_injected} injected "
                f"write-backs): {exc}"
            )
        return CrashSample(
            index=index,
            design=self.design,
            plan=plan,
            cycle=crash.cycle,
            info=info,
            n_rolled_back=report.n_rolled_back,
            n_replayed=report.n_replayed,
            occupancy=crash.occupancy,
            violation=violation,
            recovery_passes=passes,
            media_faults=stats.faults,
        )

    def _recover_with_crashes(
        self, image, plan: FaultPlan
    ) -> "tuple[RecoveryReport, int]":
        """Run recovery, injecting the plan's crash-during-recovery points.

        Returns the report of the pass that completed plus the total
        number of passes attempted.  A resumed-sweep pass reports no
        rollback/replay work (the repairs were already durable), so the
        completing pass's report is returned as-is.
        """
        layout = self.run.layout
        passes = 0
        for i, rc in enumerate(plan.recovery_crashes):
            writer = CrashingRecoveryWriter(
                image,
                after_writes=rc.after_writes,
                seed=(plan.seed * 0x9E3779B1 + i) & 0xFFFFFFFF,
                drop_prob=rc.drop_prob,
            )
            passes += 1
            try:
                # The pass may outrun its crash budget and complete.
                return recover(image, layout, writer=writer), passes
            except RecoveryCrashed:
                writer.materialise_crash()
        return recover(image, layout), passes + 1

    def crash_schedule(self, schedule: CrashSchedule, index: int = 0) -> CrashSample:
        """Concretise a fractional schedule against this cell and crash."""
        return self.crash_once(
            schedule.concretise(self.horizon, self.total_ops), index=index
        )


@dataclass
class CrashTestResult:
    """All samples of one (workload, design) crashtest."""

    workload: str
    design: str
    seed: int
    expect_failures: bool
    horizon: float
    total_ops: int
    samples: List[CrashSample] = field(default_factory=list)
    #: ERROR-level findings of the static lint pre-flight over the cell.
    lint_errors: int = 0
    #: minimal failing reproducer, when a failure was found and shrunk.
    shrunk: Optional["ShrinkResult"] = None

    @property
    def violations(self) -> List[str]:
        return [s.violation for s in self.samples if s.violation]

    @property
    def lint_consistent(self) -> bool:
        """Static lint and dynamic oracle must agree on the design.

        A correct design must lint without ERROR findings; NON-ATOMIC must
        lint *with* them (its missing ordering is exactly what the
        differential oracle then reproduces as invariant violations).
        Torn-write stress is dynamic-only, so it does not change the
        static expectation.
        """
        return (self.lint_errors > 0) == (self.design == "non-atomic")

    @property
    def ok(self) -> bool:
        """Correct designs must never fail; NON-ATOMIC (and torn-write
        stress runs) must fail at least once or the checker is blind.
        The static lint pre-flight must agree with the dynamic outcome."""
        if not self.lint_consistent:
            return False
        if self.expect_failures:
            return len(self.violations) > 0
        return not self.violations

    def replay_command(self) -> str:
        return (
            f"python -m repro crashtest {self.workload} --design {self.design} "
            f"--crashes {len(self.samples)} --seed {self.seed}"
        )

    def summary(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "design": self.design,
            "seed": self.seed,
            "crashes": len(self.samples),
            "violations": len(self.violations),
            "expect_failures": self.expect_failures,
            "lint_errors": self.lint_errors,
            "lint_consistent": self.lint_consistent,
            "ok": self.ok,
            "horizon_cycles": self.horizon,
            "recovered_ok": sum(1 for s in self.samples if s.ok),
            "injected_writebacks": sum(s.info.n_injected for s in self.samples),
            "guard_blocked": sum(s.info.n_guard_blocked for s in self.samples),
            "recovery_passes": sum(s.recovery_passes for s in self.samples),
            "media_retries": sum(
                int(s.media_faults.get("retries", 0))
                for s in self.samples
                if s.media_faults
            ),
            "shrunk_at": None if self.shrunk is None else self.shrunk.minimal_at,
            "replay": self.replay_command(),
        }

    def render(self) -> str:
        head = (
            f"crashtest {self.workload} on {self.design}: "
            f"{len(self.samples)} crashes (seed {self.seed}), "
            f"{len(self.violations)} violation(s)"
        )
        lines = [head]
        expectation = "expected >=1" if self.expect_failures else "expected 0"
        lines.append(
            f"  {'PASS' if self.ok else 'FAIL'} ({expectation}; horizon "
            f"{self.horizon:g} cycles, {self.total_ops} micro-ops)"
        )
        agree = "agrees" if self.lint_consistent else "DISAGREES"
        lines.append(
            f"  static lint: {self.lint_errors} error(s); {agree} with the "
            f"dynamic oracle"
        )
        for msg in self.violations[:5]:
            lines.append(f"  - {msg}")
        if len(self.violations) > 5:
            lines.append(f"  ... {len(self.violations) - 5} more")
        if self.shrunk is not None:
            lines.append(f"  shrunk: {self.shrunk.describe()}")
        if not self.ok:
            lines.append(f"  replay: {self.replay_command()}")
        return "\n".join(lines)


@dataclass
class DifferentialResult:
    """Same crash schedules replayed across every hardware design."""

    workload: str
    seed: int
    results: Dict[str, CrashTestResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results.values())

    def summary(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "ok": self.ok,
            "designs": {d: r.summary() for d, r in self.results.items()},
        }

    def render(self) -> str:
        lines = [
            f"differential crashtest {self.workload} (seed {self.seed}): "
            f"{'PASS' if self.ok else 'FAIL'}"
        ]
        for design, result in self.results.items():
            mark = "ok  " if result.ok else "FAIL"
            expect = "must fail" if result.expect_failures else "must recover"
            lines.append(
                f"  [{mark}] {design:<17} {len(result.violations):>3}/"
                f"{len(result.samples)} violations ({expect})"
            )
        for result in self.results.values():
            if not result.ok:
                lines.append("")
                lines.append(result.render())
        return "\n".join(lines)


def run_crashtest(
    workload: str,
    design: str,
    crashes: int = 50,
    seed: int = 7,
    torn: bool = False,
    writeback_faults: bool = True,
    writeback_prob: float = DEFAULT_WRITEBACK_PROB,
    drop_faults: bool = True,
    drop_prob: float = DEFAULT_DROP_PROB,
    shrink: bool = True,
    cfg: Optional[WorkloadConfig] = None,
    machine_cfg: MachineConfig = TABLE_I,
) -> CrashTestResult:
    """Crash one (workload, design) cell ``crashes`` times and validate."""
    from repro.chaos.shrink import shrink_crash_point

    harness = CrashHarness(workload, design, cfg=cfg, machine_cfg=machine_cfg)
    schedules = sample_schedules(
        crashes,
        seed,
        writeback_faults=writeback_faults,
        writeback_prob=writeback_prob,
        drop_faults=drop_faults,
        drop_prob=drop_prob,
        torn=torn,
    )
    result = CrashTestResult(
        workload=workload,
        design=design,
        seed=seed,
        expect_failures=(design == "non-atomic") or torn,
        horizon=harness.horizon,
        total_ops=harness.total_ops,
        lint_errors=len(harness.lint.errors),
    )
    for i, schedule in enumerate(schedules):
        result.samples.append(harness.crash_schedule(schedule, index=i))
    if shrink and result.violations:
        first = next(s for s in result.samples if s.violation)
        result.shrunk = shrink_crash_point(harness, first.plan)
    return result


def run_differential(
    workload: str,
    crashes: int = 50,
    seed: int = 7,
    torn: bool = False,
    writeback_faults: bool = True,
    writeback_prob: float = DEFAULT_WRITEBACK_PROB,
    drop_faults: bool = True,
    drop_prob: float = DEFAULT_DROP_PROB,
    shrink: bool = False,
    cfg: Optional[WorkloadConfig] = None,
    machine_cfg: MachineConfig = TABLE_I,
    designs: Optional[Sequence[str]] = None,
) -> DifferentialResult:
    """Replay the same crash schedules on every design (the oracle)."""
    out = DifferentialResult(workload=workload, seed=seed)
    for design in designs or DESIGNS:
        out.results[design] = run_crashtest(
            workload,
            design,
            crashes=crashes,
            seed=seed,
            torn=torn,
            writeback_faults=writeback_faults,
            writeback_prob=writeback_prob,
            drop_faults=drop_faults,
            drop_prob=drop_prob,
            shrink=shrink,
            cfg=cfg,
            machine_cfg=machine_cfg,
        )
    return out
