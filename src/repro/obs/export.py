"""Machine-readable JSON export of simulation statistics.

Two documents are produced:

* :func:`stats_to_json` — one machine run, schema ``repro.stats/1``:
  the :meth:`~repro.sim.stats.MachineStats.summary` dict, the full
  per-core counter breakdown, and any metrics collected by a tracer.
* :func:`bench_summary` — schema ``repro.bench/1``: the cycles/stall
  summary of every (benchmark, design) cell at a fixed scale.  Written
  as ``BENCH_trace.json`` it is a stable, diffable record the harness
  can compare across PRs to catch timing regressions.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

from repro.sim.stats import CoreStats, MachineStats

STATS_SCHEMA = "repro.stats/1"
BENCH_SCHEMA = "repro.bench/1"

#: CoreStats fields exported per core, in declaration order.
_CORE_FIELDS = tuple(f.name for f in dataclasses.fields(CoreStats) if f.name != "metrics")


def core_to_json(core: CoreStats) -> Dict[str, int]:
    out = {name: getattr(core, name) for name in _CORE_FIELDS}
    out["persist_stalls"] = core.persist_stalls
    return out


def stats_to_json(stats: MachineStats) -> Dict[str, object]:
    """Full machine-run export: summary, per-core counters, metrics."""
    doc: Dict[str, object] = {
        "schema": STATS_SCHEMA,
        "summary": stats.summary(),
        "per_core": [core_to_json(core) for core in stats.per_core],
    }
    if stats.metrics is not None:
        doc["metrics"] = stats.metrics.to_json()
    return doc


def write_stats_json(path: str, stats: MachineStats) -> Dict[str, object]:
    doc = stats_to_json(stats)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def bench_summary(
    ops_per_thread: int = 8,
    model: str = "txn",
    benchmarks: Optional[Sequence[str]] = None,
    designs: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run every (benchmark, design) cell and return a diffable summary.

    The simulator is deterministic, so at a fixed ``ops_per_thread`` the
    resulting document is byte-stable across runs — any diff between PRs
    is a real timing-model change.
    """
    # Imported lazily: the harness imports the simulator, which imports
    # repro.obs — a module-level import here would be circular.
    from repro.harness.experiment import ALL_DESIGNS, run_cell
    from repro.harness.figures import BENCH_ORDER

    benchmarks = tuple(benchmarks or BENCH_ORDER)
    designs = tuple(designs or ALL_DESIGNS)
    cells: List[Dict[str, object]] = []
    for bench in benchmarks:
        for design in designs:
            stats = run_cell(bench, design, model, ops_per_thread=ops_per_thread)
            cell: Dict[str, object] = {"benchmark": bench, "model": model}
            cell.update(stats.summary())
            cells.append(cell)
    return {
        "schema": BENCH_SCHEMA,
        "model": model,
        "ops_per_thread": ops_per_thread,
        "benchmarks": list(benchmarks),
        "designs": list(designs),
        "cells": cells,
    }


def write_bench_summary(path: str, **kwargs) -> Dict[str, object]:
    doc = bench_summary(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc
