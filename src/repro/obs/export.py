"""Machine-readable JSON export of simulation statistics.

Two documents are produced:

* :func:`stats_to_json` — one machine run, schema ``repro.stats/1``:
  the :meth:`~repro.sim.stats.MachineStats.summary` dict, the full
  per-core counter breakdown, and any metrics collected by a tracer.
* :func:`bench_summary` — schema ``repro.bench/1``: the cycles/stall
  summary of every (benchmark, design) cell at a fixed scale.  Written
  as ``BENCH_trace.json`` it is a stable, diffable record the harness
  can compare across PRs to catch timing regressions.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

from repro.sim.stats import CoreStats, MachineStats

STATS_SCHEMA = "repro.stats/1"
BENCH_SCHEMA = "repro.bench/1"
SWEEP_SCHEMA = "repro.sweep/1"
#: the campaign service's write-ahead journal (JSONL, one record/line).
CAMPAIGN_SCHEMA = "repro.campaign/1"
#: the campaign service's HTTP status document.
CAMPAIGN_STATUS_SCHEMA = "repro.campaign-status/1"

#: CoreStats fields exported per core, in declaration order.
_CORE_FIELDS = tuple(f.name for f in dataclasses.fields(CoreStats) if f.name != "metrics")


def dump_json(path: str, doc: Dict[str, object]) -> None:
    """Write ``doc`` as indented, sorted JSON, rejecting NaN/Infinity.

    ``allow_nan=False`` makes every exporter fail loudly instead of
    emitting the non-standard ``Infinity``/``NaN`` literals that most
    JSON parsers refuse.
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True, allow_nan=False)
        fh.write("\n")


def core_to_json(core: CoreStats) -> Dict[str, int]:
    out = {name: getattr(core, name) for name in _CORE_FIELDS}
    out["persist_stalls"] = core.persist_stalls
    return out


def core_from_json(doc: Dict[str, int]) -> CoreStats:
    """Inverse of :func:`core_to_json` (derived fields are recomputed)."""
    return CoreStats(**{name: int(doc[name]) for name in _CORE_FIELDS if name in doc})


def machine_stats_to_doc(stats: MachineStats) -> Dict[str, object]:
    """Minimal lossless record of a run (the on-disk cache payload)."""
    return {
        "design": stats.design,
        "per_core": [core_to_json(core) for core in stats.per_core],
    }


def machine_stats_from_doc(doc: Dict[str, object]) -> MachineStats:
    """Rebuild a :class:`MachineStats` from :func:`machine_stats_to_doc`.

    Tracer metrics and crash state are intentionally not round-tripped:
    cached cells behave exactly like fresh untraced runs.
    """
    per_core = doc["per_core"]
    if not isinstance(per_core, list):
        raise ValueError("malformed stats document: per_core must be a list")
    return MachineStats(
        design=str(doc["design"]),
        per_core=[core_from_json(core) for core in per_core],
    )


def stats_to_json(stats: MachineStats) -> Dict[str, object]:
    """Full machine-run export: summary, per-core counters, metrics."""
    doc: Dict[str, object] = {
        "schema": STATS_SCHEMA,
        "summary": stats.summary(),
        "per_core": [core_to_json(core) for core in stats.per_core],
    }
    if stats.metrics is not None:
        doc["metrics"] = stats.metrics.to_json()
    return doc


def write_stats_json(path: str, stats: MachineStats) -> Dict[str, object]:
    doc = stats_to_json(stats)
    dump_json(path, doc)
    return doc


def sweep_to_json(sweep, deterministic: bool = False) -> Dict[str, object]:
    """Schema ``repro.sweep/1``: per-cell stats, wall time, cache counters.

    ``sweep`` is a :class:`repro.harness.sweep.SweepResult` (duck-typed
    here to keep this module free of harness imports).  With
    ``deterministic=True`` the wall-clock and cache-provenance fields are
    omitted, leaving a document that is byte-identical across ``-j``
    levels and cold/warm caches — the form CI diffs.
    """
    cells: List[Dict[str, object]] = []
    for res in sweep.cells:
        cell: Dict[str, object] = {
            "benchmark": res.cell.benchmark,
            "design": res.cell.design,
            "model": res.cell.model,
            "ops_per_thread": res.cell.ops_per_thread,
            "ops_per_region": res.cell.ops_per_region,
            "key": res.cell.key(),
            "ok": res.ok,
            "error": res.error,
            "failure": None if res.failure is None else res.failure.to_json(),
            "summary": res.stats.summary() if res.stats is not None else None,
        }
        if not deterministic:
            cell["source"] = res.source
            cell["wall_time_s"] = round(res.wall_time, 6)
        cells.append(cell)
    doc: Dict[str, object] = {
        "schema": SWEEP_SCHEMA,
        "n_cells": len(cells),
        "errors": sweep.errors,
        "cells": cells,
    }
    if not deterministic:
        doc.update(
            jobs=sweep.jobs,
            wall_time_s=round(sweep.wall_time, 6),
            cache_hits=sweep.cache_hits,
            cache_misses=sweep.cache_misses,
            memo_hits=sweep.memo_hits,
        )
    return doc


def write_sweep_json(path: str, sweep, deterministic: bool = False) -> Dict[str, object]:
    doc = sweep_to_json(sweep, deterministic=deterministic)
    dump_json(path, doc)
    return doc


def load_sweep_json(path: str) -> Dict[str, object]:
    """Load and normalise a ``repro.sweep/1`` document.

    Deterministic exports omit the wall-clock and provenance fields
    (see :func:`sweep_to_json`), which used to make them a different
    shape from live exports — consumers indexing ``cell["wall_time_s"]``
    crashed on a ``--deterministic`` artefact.  The normaliser restores
    every omitted field with its neutral value (``source="unknown"``,
    zero wall time, ``jobs=1``, zeroed cache counters) so both forms
    round-trip through the same tooling.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != SWEEP_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SWEEP_SCHEMA!r}, got "
            f"{doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r}"
        )
    cells = doc.get("cells")
    if not isinstance(cells, list):
        raise ValueError(f"{path}: sweep 'cells' must be a list")
    for cell in cells:
        cell.setdefault("source", "unknown")
        cell.setdefault("wall_time_s", 0.0)
    doc.setdefault("jobs", 1)
    doc.setdefault("wall_time_s", 0.0)
    doc.setdefault("cache_hits", 0)
    doc.setdefault("cache_misses", 0)
    doc.setdefault("memo_hits", 0)
    return doc


def campaign_status_to_json(
    campaign_id: str,
    kind: str,
    status: str,
    total: int,
    done: int,
    errors: int,
    spec: Dict[str, object],
    workers: Optional[List[Dict[str, object]]] = None,
    detail: Optional[str] = None,
) -> Dict[str, object]:
    """Schema ``repro.campaign-status/1``: one campaign's live status.

    Served by ``GET /campaigns/<id>`` — deliberately wall-clock-free so
    polling clients can diff consecutive documents and see only real
    progress.  ``status`` walks ``queued -> running -> finished``
    (terminal alternatives: ``cancelled``, ``failed``); ``detail``
    carries the failure message on ``failed``.
    """
    doc: Dict[str, object] = {
        "schema": CAMPAIGN_STATUS_SCHEMA,
        "id": campaign_id,
        "kind": kind,
        "status": status,
        "total": total,
        "done": done,
        "errors": errors,
        "spec": spec,
    }
    if workers is not None:
        doc["workers"] = workers
    if detail is not None:
        doc["detail"] = detail
    return doc


def bench_summary(
    ops_per_thread: int = 8,
    model: str = "txn",
    benchmarks: Optional[Sequence[str]] = None,
    designs: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run every (benchmark, design) cell and return a diffable summary.

    The simulator is deterministic, so at a fixed ``ops_per_thread`` the
    resulting document is byte-stable across runs — any diff between PRs
    is a real timing-model change.
    """
    # Imported lazily: the harness imports the simulator, which imports
    # repro.obs — a module-level import here would be circular.
    from repro.harness.experiment import ALL_DESIGNS, run_cell
    from repro.harness.figures import BENCH_ORDER

    benchmarks = tuple(benchmarks or BENCH_ORDER)
    designs = tuple(designs or ALL_DESIGNS)
    cells: List[Dict[str, object]] = []
    for bench in benchmarks:
        for design in designs:
            stats = run_cell(bench, design, model, ops_per_thread=ops_per_thread)
            cell: Dict[str, object] = {"benchmark": bench, "model": model}
            cell.update(stats.summary())
            cells.append(cell)
    return {
        "schema": BENCH_SCHEMA,
        "model": model,
        "ops_per_thread": ops_per_thread,
        "benchmarks": list(benchmarks),
        "designs": list(designs),
        "cells": cells,
    }


def write_bench_summary(path: str, **kwargs) -> Dict[str, object]:
    doc = bench_summary(**kwargs)
    dump_json(path, doc)
    return doc
