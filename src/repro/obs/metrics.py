"""Counter / Gauge / Histogram metrics for the simulator.

Metrics complement the event trace (:mod:`repro.obs.tracer`): events say
*when* something happened, metrics summarise *how often* and *how much*.
The registry namespaces metrics by instrument (``core0/rob/occupancy``,
``pm/ack_latency``) so one machine run produces a single flat, diffable
dictionary via :meth:`MetricsRegistry.to_json`.

Everything here is observation-only: no metric feeds back into timing, so
collecting them cannot perturb simulated cycle counts.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_json(self) -> Dict[str, Union[int, float]]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value, with min/max envelope and sample count."""

    __slots__ = ("last", "min", "max", "n")

    def __init__(self) -> None:
        self.last = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.n = 0

    def set(self, value: float) -> None:
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.n += 1

    def to_json(self) -> Dict[str, Union[int, float]]:
        if self.n == 0:
            return {"type": "gauge", "last": 0.0, "min": 0.0, "max": 0.0, "n": 0}
        return {
            "type": "gauge",
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "n": self.n,
        }


class Histogram:
    """Distribution of observed values with nearest-rank percentiles.

    Raw samples are retained (runs are short enough that this is cheap)
    so any percentile can be computed exactly after the fact.
    """

    __slots__ = ("_values", "_sorted", "total")

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted = True
        self.total = 0.0

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self.total / len(self._values)

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile: smallest value with at least ``p``%
        of samples at or below it.  ``percentile(0)`` is the minimum,
        ``percentile(100)`` the maximum; empty histograms report 0.0."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        if p == 0.0:
            return self._values[0]
        rank = math.ceil(p / 100.0 * len(self._values))
        return self._values[rank - 1]

    def to_json(self) -> Dict[str, Union[int, float]]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def export_buckets(self) -> Dict[str, int]:
        """Fixed log2-spaced bucket counts, mergeable across histograms.

        Bucket ``"0"`` counts non-positive samples; bucket ``"2^e"``
        counts samples in ``(2^(e-1), 2^e]`` (so ``2^0`` covers the
        half-open ``(0, 1]``).  The boundaries are a property of the
        scheme, not of the data, so exports from different runs — or
        different workers of one sweep — merge by summing counts per key
        (:func:`merge_buckets`).  Export is observation-only: it never
        sorts or mutates the sample list, so summary statistics computed
        before and after are identical.
        """
        buckets: Dict[str, int] = {}
        for value in self._values:
            if value <= 0:
                key = "0"
            else:
                key = f"2^{max(0, math.ceil(math.log2(value)))}"
            buckets[key] = buckets.get(key, 0) + 1
        return {key: buckets[key] for key in sorted(buckets, key=_bucket_rank)}


def _bucket_rank(key: str) -> float:
    """Sort key for bucket labels: ``"0"`` first, then by exponent."""
    return -math.inf if key == "0" else float(key[2:])


def merge_buckets(*bucket_maps: Dict[str, int]) -> Dict[str, int]:
    """Sum any number of :meth:`Histogram.export_buckets` maps."""
    merged: Dict[str, int] = {}
    for bucket_map in bucket_maps:
        for key, count in bucket_map.items():
            merged[key] = merged.get(key, 0) + count
    return {key: merged[key] for key in sorted(merged, key=_bucket_rank)}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Flat, namespaced get-or-create store for metrics."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def scope(self, prefix: str) -> "ScopedMetrics":
        return ScopedMetrics(self, prefix)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def to_json(self) -> Dict[str, Dict[str, Union[int, float]]]:
        return {name: self._metrics[name].to_json() for name in sorted(self._metrics)}


class ScopedMetrics:
    """A prefixed view onto a registry (e.g. one per core).

    Attached to :class:`~repro.sim.stats.CoreStats` so per-core metrics
    live beside the per-core counters while sharing one backing registry.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip("/") + "/"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._prefix + name)

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._prefix + name)
