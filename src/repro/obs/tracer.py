"""Event tracer for the timing simulator.

The simulator is instrumented at every point the paper's evaluation
reasons about — dispatch, persist-order stalls (with the ``stall_*``
cause taxonomy of Figure 8), persist-queue push/retire, strand-buffer
alloc/rotate, PM write-queue admit/drain, CLWB issue/ack and lock
acquire/release.  Each instrumentation site follows one convention::

    if tracer.enabled:
        tracer.span("stall:fence", track, start, duration)

so with the default :data:`NULL_TRACER` the entire layer costs a single
attribute check per site and *cannot* change simulated timing: tracing is
observation-only by construction (no tracer method returns a time).

Tracks are plain strings.  Per-core activity goes on ``core<tid>``;
shared resources use slash-separated names (``pm/write-queue``,
``pm/media``).  The Perfetto exporter (:mod:`repro.obs.perfetto`) maps
each track to one timeline row.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.obs.metrics import MetricsRegistry


def core_track(tid: int) -> str:
    """Canonical track name for core ``tid``."""
    return f"core{tid}"


class TraceEvent(NamedTuple):
    """One trace record.  ``ph`` follows the Chrome trace-event phases we
    emit: ``"X"`` (complete span), ``"i"`` (instant), ``"C"`` (counter)."""

    name: str
    track: str
    ts: float
    dur: float
    ph: str
    args: Optional[Dict[str, object]]


class Tracer:
    """Collects :class:`TraceEvent` records during one machine run.

    ``mode="unbounded"`` keeps every event; ``mode="ring"`` keeps the most
    recent ``capacity`` events (the steady-state tail of a long run) and
    counts the rest in :attr:`dropped`.  A :class:`MetricsRegistry` rides
    along so instrumentation sites can record distributions (queue
    occupancy, ack latency) next to the events that produced them.
    """

    MODES = ("unbounded", "ring")

    def __init__(self, mode: str = "unbounded", capacity: int = 1 << 16) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.enabled = True
        self.mode = mode
        self.capacity = capacity
        self.metrics = MetricsRegistry()
        self.dropped = 0
        self._events: List[TraceEvent] = []
        self._head = 0  # ring mode: index of the oldest retained event

    # -- emission ----------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        if self.mode == "ring" and len(self._events) >= self.capacity:
            self._events[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1
        else:
            self._events.append(event)

    def instant(self, name: str, track: str, ts: float, **args: object) -> None:
        """A point-in-time marker (e.g. ``pq.push``, ``lock.acquire``)."""
        self._append(TraceEvent(name, track, ts, 0.0, "i", args or None))

    def span(self, name: str, track: str, ts: float, dur: float, **args: object) -> None:
        """A duration on a track; zero/negative durations collapse to an
        instant so cause markers are never lost."""
        if dur <= 0.0:
            self._append(TraceEvent(name, track, ts, 0.0, "i", args or None))
            return
        self._append(TraceEvent(name, track, ts, dur, "X", args or None))

    def counter(self, name: str, track: str, ts: float, value: float) -> None:
        """A sampled counter series (queue occupancy over time)."""
        self._append(TraceEvent(name, track, ts, 0.0, "C", {"value": value}))

    def stall(self, cause: str, track: str, ts: float, dur: float, **args: object) -> None:
        """A dispatch stall attributed to ``cause`` — one of the
        ``stall_*`` taxonomy buckets, with the prefix stripped."""
        if cause.startswith("stall_"):
            cause = cause[len("stall_"):]
        self.span(f"stall:{cause}", track, ts, dur, cause=cause, **args)

    # -- inspection --------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first (ring order is unwrapped)."""
        if self._head:
            return self._events[self._head:] + self._events[: self._head]
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class NullTracer:
    """The disabled tracer: every method is a no-op, :attr:`enabled` is
    False so guarded hot paths skip even argument construction."""

    enabled = False
    mode = "off"
    dropped = 0

    #: a registry is still reachable so unguarded metric lookups work,
    #: but nothing routes samples into it when sites honour the guard.
    metrics = MetricsRegistry()

    def instant(self, name: str, track: str, ts: float, **args: object) -> None:
        pass

    def span(self, name: str, track: str, ts: float, dur: float, **args: object) -> None:
        pass

    def counter(self, name: str, track: str, ts: float, value: float) -> None:
        pass

    def stall(self, cause: str, track: str, ts: float, dur: float, **args: object) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0


#: process-wide disabled tracer; the default everywhere.
NULL_TRACER = NullTracer()
