"""Chrome/Perfetto trace-event JSON export.

Produces the legacy trace-event format accepted by ui.perfetto.dev and
``chrome://tracing``: a ``traceEvents`` array where every record carries
``ph`` (phase), ``ts`` (microseconds), ``pid``, ``tid`` and ``name``.
One simulated cycle is exported as one microsecond.

Track layout: tracks are grouped by the prefix before the first ``/``
(``core3`` and ``core3/clwb`` share group ``core3``; ``pm/write-queue``
and ``pm/media`` share group ``pm``).  Each group becomes one process;
each track becomes one named thread of that process, so Perfetto shows a
collapsible block per core and per shared resource.  Events are sorted
by timestamp per track so each timeline row is monotonic.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.tracer import Tracer


def _track_ids(tracks: List[str]) -> Dict[str, Tuple[int, int]]:
    """Assign a stable (pid, tid) to every track name, grouping tracks
    that share a prefix into one process.  Core groups keep pid = tid + 1
    ordering ahead of shared resources so the UI lists cores first."""
    groups: List[str] = []
    for track in tracks:
        group = track.split("/", 1)[0]
        if group not in groups:
            groups.append(group)
    cores = sorted(
        (g for g in groups if g.startswith("core") and g[4:].isdigit()),
        key=lambda g: int(g[4:]),
    )
    others = [g for g in groups if g not in cores]
    pid_of = {g: i + 1 for i, g in enumerate(cores + others)}
    ids: Dict[str, Tuple[int, int]] = {}
    next_tid: Dict[str, int] = {}
    for track in tracks:
        group = track.split("/", 1)[0]
        tid = next_tid.get(group, 0)
        next_tid[group] = tid + 1
        ids[track] = (pid_of[group], tid)
    return ids


def to_perfetto(tracer: Tracer) -> Dict[str, object]:
    """Render the tracer's events as a trace-event JSON document."""
    events = sorted(tracer.events(), key=lambda e: (e.track, e.ts))
    seen: List[str] = []
    for ev in events:
        if ev.track not in seen:
            seen.append(ev.track)
    ids = _track_ids(seen)

    records: List[Dict[str, object]] = []
    # Metadata first: name each process (track group) and thread (track).
    named_pids = set()
    for track in seen:
        pid, tid = ids[track]
        if pid not in named_pids:
            named_pids.add(pid)
            records.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": track.split("/", 1)[0]},
                }
            )
        records.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": track},
            }
        )

    for ev in events:
        pid, tid = ids[ev.track]
        record: Dict[str, object] = {
            "ph": ev.ph,
            "name": ev.name,
            "pid": pid,
            "tid": tid,
            "ts": ev.ts,
        }
        if ev.ph == "X":
            record["dur"] = ev.dur
        elif ev.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        if ev.args:
            record["args"] = dict(ev.args)
        records.append(record)

    doc: Dict[str, object] = {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs (StrandWeaver reproduction)",
            "time_unit": "1 simulated cycle = 1us",
            "dropped_events": tracer.dropped,
        },
    }
    return doc


def write_trace(path: str, tracer: Tracer) -> Dict[str, object]:
    """Write the Perfetto JSON for ``tracer`` to ``path``; returns the
    document (handy for tests and summaries)."""
    doc = to_perfetto(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc
