"""Observability layer: event tracing, metrics, and exporters.

Zero-dependency instrumentation for the timing simulator.  The default
:data:`~repro.obs.tracer.NULL_TRACER` makes every instrumentation site a
single attribute check, so tier-1 timing results are unchanged unless a
:class:`~repro.obs.tracer.Tracer` is explicitly passed to
:class:`~repro.sim.machine.Machine`.

See README.md ("Tracing & metrics") for the Perfetto walkthrough.
"""

from repro.obs.export import (
    BENCH_SCHEMA,
    STATS_SCHEMA,
    SWEEP_SCHEMA,
    bench_summary,
    load_sweep_json,
    stats_to_json,
    sweep_to_json,
    write_bench_summary,
    write_stats_json,
    write_sweep_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedMetrics,
    merge_buckets,
)
from repro.obs.perfetto import to_perfetto, write_trace
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer, core_track

__all__ = [
    "BENCH_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "STATS_SCHEMA",
    "SWEEP_SCHEMA",
    "ScopedMetrics",
    "TraceEvent",
    "Tracer",
    "bench_summary",
    "core_track",
    "load_sweep_json",
    "merge_buckets",
    "stats_to_json",
    "sweep_to_json",
    "to_perfetto",
    "write_bench_summary",
    "write_stats_json",
    "write_sweep_json",
    "write_trace",
]
