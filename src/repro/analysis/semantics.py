"""Per-design ordering semantics for the static analyzer.

The analyzer asks one question of a compiled trace: *will this program be
crash-consistent when run on hardware design X?*  Each design honours a
different subset of the ordering vocabulary (Intel x86 implements SFENCE
but treats strand primitives as no-ops; StrandWeaver the reverse;
NON-ATOMIC honours nothing).  :func:`effective_program` projects a trace
onto the primitives the target design actually implements, and the formal
persistency model (Eqs. 1-4, :class:`~repro.core.model.PersistDag`) is
then built over that projection — so a strand-dialect trace analysed for
NON-ATOMIC hardware correctly shows *no* ordering edges, which is exactly
why the differential chaos oracle can reproduce every ERROR the analyzer
reports on NON-ATOMIC-style designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from repro.core.ops import FENCE_KINDS, Op, OpKind, Program


@dataclass(frozen=True)
class DesignSemantics:
    """Which ordering primitives one hardware design implements."""

    design: str
    #: fence-like kinds the design honours; all other fence kinds are
    #: architectural no-ops on this hardware and are projected away.
    honored: FrozenSet[OpKind]
    #: kinds that order earlier persists before later ones (Eq. 1 style).
    barrier_kinds: FrozenSet[OpKind]
    #: kinds that synchronously drain (durability points, Eq. 2 style).
    drain_kinds: FrozenSet[OpKind]
    #: NEW_STRAND/JOIN_STRAND carry meaning (strand hardware only).
    has_strands: bool

    @property
    def provides_ordering(self) -> bool:
        """False only for the NON-ATOMIC upper bound."""
        return bool(self.barrier_kinds or self.drain_kinds)


_X86 = DesignSemantics(
    design="intel-x86",
    honored=frozenset({OpKind.SFENCE}),
    barrier_kinds=frozenset({OpKind.SFENCE}),
    drain_kinds=frozenset({OpKind.SFENCE}),
    has_strands=False,
)

_HOPS = DesignSemantics(
    design="hops",
    honored=frozenset({OpKind.OFENCE, OpKind.DFENCE}),
    barrier_kinds=frozenset({OpKind.OFENCE, OpKind.DFENCE}),
    drain_kinds=frozenset({OpKind.DFENCE}),
    has_strands=False,
)

_STRAND_KINDS = frozenset(
    {OpKind.PERSIST_BARRIER, OpKind.NEW_STRAND, OpKind.JOIN_STRAND}
)

_STRANDWEAVER = DesignSemantics(
    design="strandweaver",
    honored=_STRAND_KINDS,
    barrier_kinds=frozenset({OpKind.PERSIST_BARRIER, OpKind.JOIN_STRAND}),
    drain_kinds=frozenset({OpKind.JOIN_STRAND}),
    has_strands=True,
)

_NO_PQ = DesignSemantics(
    design="no-persist-queue",
    honored=_STRAND_KINDS,
    barrier_kinds=frozenset({OpKind.PERSIST_BARRIER, OpKind.JOIN_STRAND}),
    drain_kinds=frozenset({OpKind.JOIN_STRAND}),
    has_strands=True,
)

_NON_ATOMIC = DesignSemantics(
    design="non-atomic",
    honored=frozenset(),
    barrier_kinds=frozenset(),
    drain_kinds=frozenset(),
    has_strands=False,
)

SEMANTICS = {
    s.design: s for s in (_X86, _HOPS, _STRANDWEAVER, _NO_PQ, _NON_ATOMIC)
}


def semantics_for(design: str) -> DesignSemantics:
    """Ordering semantics of one hardware design (by Machine name)."""
    try:
        return SEMANTICS[design]
    except KeyError:
        raise ValueError(
            f"unknown design {design!r}; choose from {sorted(SEMANTICS)}"
        ) from None


class EffectiveProgram:
    """A trace projected onto the primitives one design implements.

    Quacks enough like :class:`~repro.core.ops.Program` for
    :class:`~repro.core.model.PersistDag` (``n_threads`` + ``all_ops()``),
    while returning the *original* ``Op`` objects so every diagnostic
    keeps the source trace's ``(tid, seq)`` coordinates.
    """

    def __init__(self, program: Program, sem: DesignSemantics) -> None:
        self.source = program
        self.semantics = sem
        self.n_threads = program.n_threads
        self._ops: List[Op] = [
            op
            for op in program.all_ops()
            if op.kind not in FENCE_KINDS or op.kind in sem.honored
        ]

    def all_ops(self) -> List[Op]:
        return self._ops

    def thread_ops(self, tid: int) -> List[Op]:
        return [op for op in self._ops if op.tid == tid]


def effective_program(program: Program, sem: DesignSemantics) -> EffectiveProgram:
    """Project ``program`` onto the fences ``sem``'s hardware honours."""
    return EffectiveProgram(program, sem)
