"""SARIF 2.1.0 export for analyzer and model-checker findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests natively, so ``repro lint --format sarif`` and
``repro modelcheck --format sarif`` surface persist-ordering findings as
first-class code-scanning alerts.

The mapping is lossless for our purposes and round-trippable
(:func:`diagnostics_from_sarif`): ops are not files, so a finding's
location is encoded as a virtual artifact URI ``trace://<target>/t<tid>``
with the op's thread-stream index as the (1-based) line; every
repro-specific field SARIF has no slot for rides in the result's
``properties`` bag.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity -> SARIF result level.
_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.ADVICE: "note",
}
_SEVERITY = {v: k for k, v in _LEVEL.items()}


def _location(target: str, tid: int, seq: int) -> Dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": f"trace://{target}/t{tid}"},
            "region": {"startLine": seq + 1},
        }
    }


def _diag_result(diag: Diagnostic, target: str) -> Dict[str, object]:
    return {
        "ruleId": f"{diag.check}/{diag.rule}",
        "level": _LEVEL[diag.severity],
        "message": {"text": diag.message},
        "locations": [_location(target, diag.tid, diag.seq)],
        "properties": {
            "check": diag.check,
            "rule": diag.rule,
            "tid": diag.tid,
            "seq": diag.seq,
            "gseq": diag.gseq,
            "op": diag.op,
            "label": diag.label,
            "region": diag.region,
            "estimated_waste": diag.estimated_waste,
        },
    }


def _run(
    tool_name: str,
    rules: List[Dict[str, object]],
    results: List[Dict[str, object]],
    properties: Dict[str, object],
) -> Dict[str, object]:
    return {
        "tool": {
            "driver": {
                "name": tool_name,
                "informationUri": "https://github.com/",
                "version": "1.0.0",
                "rules": rules,
            }
        },
        "results": results,
        "properties": properties,
    }


def _document(runs: List[Dict[str, object]]) -> Dict[str, object]:
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": runs,
    }


def _rules_of(results: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    seen: Dict[str, Dict[str, object]] = {}
    for r in results:
        rid = r["ruleId"]
        if rid not in seen:
            seen[rid] = {
                "id": rid,
                "shortDescription": {"text": rid},
            }
    return [seen[k] for k in sorted(seen)]


def lint_to_sarif(
    report: AnalysisReport, target: str = "<program>"
) -> Dict[str, object]:
    """One ``repro lint`` report as a single-run SARIF 2.1.0 document."""
    results = [_diag_result(d, target) for d in report.diagnostics]
    return _document(
        [
            _run(
                "repro-lint",
                _rules_of(results),
                results,
                {
                    "design": report.design,
                    "target": target,
                    "n_ops": report.n_ops,
                    "n_stores": report.n_stores,
                },
            )
        ]
    )


def modelcheck_to_sarif(reports) -> Dict[str, object]:
    """Model-check reports (one per design/target) as one SARIF document.

    Divergences carry no op anchor — they indict a *model*, not a trace
    location — so they anchor on line 1 of the target's virtual artifact.
    """
    results: List[Dict[str, object]] = []
    designs: List[str] = []
    for rep in reports:
        designs.append(rep.design)
        for div in rep.divergences:
            results.append(
                {
                    "ruleId": f"modelcheck/{div.kind}",
                    "level": "error",
                    "message": {"text": div.message},
                    "locations": [_location(rep.target, 0, 0)],
                    "properties": {
                        "kind": div.kind,
                        "design": div.design,
                        "target": rep.target,
                        "mutation": rep.mutation,
                        "detail": div.detail,
                    },
                }
            )
    return _document(
        [
            _run(
                "repro-modelcheck",
                _rules_of(results),
                results,
                {"designs": designs},
            )
        ]
    )


def diagnostics_from_sarif(doc: Dict[str, object]) -> List[Diagnostic]:
    """Rebuild :class:`Diagnostic` objects from a ``repro-lint`` document.

    The round trip is exact for every field the analyzer emits; it backs
    the schema regression test and lets downstream tooling treat SARIF
    as the interchange format without losing repro-specific context.
    """
    out: List[Diagnostic] = []
    for run in doc.get("runs", []):
        for res in run.get("results", []):
            props: Dict[str, object] = res.get("properties", {})
            level = res.get("level", "warning")
            out.append(
                Diagnostic(
                    check=str(props["check"]),
                    rule=str(props["rule"]),
                    severity=_SEVERITY[level],
                    tid=int(props["tid"]),
                    seq=int(props["seq"]),
                    gseq=int(props["gseq"]),
                    message=res["message"]["text"],
                    op=str(props.get("op", "")),
                    label=str(props.get("label", "")),
                    region=int(props.get("region", -1)),
                    estimated_waste=int(props.get("estimated_waste", 0)),
                )
            )
    return out


def report_from_sarif(doc: Dict[str, object]) -> Optional[AnalysisReport]:
    """Rebuild an :class:`AnalysisReport` from a ``repro-lint`` document."""
    runs = doc.get("runs", [])
    if not runs:
        return None
    props = runs[0].get("properties", {})
    report = AnalysisReport(
        design=str(props.get("design", "")),
        n_ops=int(props.get("n_ops", 0)),
        n_stores=int(props.get("n_stores", 0)),
        diagnostics=diagnostics_from_sarif(doc),
    )
    return report
