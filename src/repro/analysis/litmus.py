"""Seeded litmus programs for the static analyzer.

Each *buggy* case plants exactly one persistency bug and records the
``(tid, seq)`` op the analyzer must anchor its diagnostic on; each
*clean* twin fixes the bug with the minimal correct ordering and must
lint without findings of the same class.  The corpus doubles as living
documentation of what every diagnostic class means.

The programs are hand-built micro-op traces (:class:`TraceCursor`), not
runtime-generated ones, so each bug is isolated: a case triggers its own
diagnostic class and nothing above ADVICE from any other class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.diagnostics import (
    OVER_SERIALIZATION,
    PERSIST_RACE,
    STRAND_MISUSE,
    TORN_WRITE,
    UNFLUSHED,
    Severity,
)
from repro.core.ops import Program, TraceCursor
from repro.lang.runtime import COMMIT_MARKER_LABEL

#: disjoint, cache-line-aligned scratch addresses.
DATA = 0x1000
DATA2 = 0x1040
MARKER = 0x2000
LOG = 0x3000
SHARED = 0x4000


@dataclass(frozen=True)
class LitmusCase:
    """One litmus program plus the diagnostic it must (not) trigger."""

    name: str
    design: str
    description: str
    build: Callable[[], Program]
    #: diagnostic class the analyzer must report, or None for clean twins.
    expect: Optional[str] = None
    expect_rule: str = ""
    expect_severity: Optional[Severity] = None
    #: ``(tid, seq)`` of the op the diagnostic must anchor on.
    bug_site: Optional[Tuple[int, int]] = None


def _single(build_thread: Callable[[TraceCursor], None]) -> Program:
    prog = Program(1)
    build_thread(TraceCursor(prog, 0))
    return prog


# ----------------------------------------------------------------------
# 1. unflushed-persist
# ----------------------------------------------------------------------


def _unflushed_no_clwb() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x2a" * 8)  # bug: never written back
        c.join_strand()
        c.store(MARKER, b"\x01", label=COMMIT_MARKER_LABEL)
        c.clwb(MARKER)

    return _single(t0)


def _unflushed_unordered_commit() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x2a" * 8)
        c.clwb(DATA)
        c.new_strand()  # bug: commit marker races the data persist
        c.store(MARKER, b"\x01", label=COMMIT_MARKER_LABEL)
        c.clwb(MARKER)

    return _single(t0)


def _unflushed_clean() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x2a" * 8)
        c.clwb(DATA)
        c.persist_barrier()  # data persists before the marker
        c.store(MARKER, b"\x01", label=COMMIT_MARKER_LABEL)
        c.clwb(MARKER)

    return _single(t0)


# ----------------------------------------------------------------------
# 2. strand-misuse
# ----------------------------------------------------------------------


def _strand_discarded_barrier() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x01" * 8)
        c.clwb(DATA)
        c.persist_barrier()
        c.new_strand()  # bug: clears the barrier before anything used it
        c.store(DATA2, b"\x02" * 8)
        c.clwb(DATA2)

    return _single(t0)


def _strand_join_nothing() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x01" * 8)
        c.clwb(DATA)
        c.join_strand()
        c.join_strand()  # bug: nothing opened since the previous join

    return _single(t0)


def _strand_unordered_pair() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(LOG, b"\x0a" * 8, label="log:store")
        c.clwb(LOG)
        # bug: no persist barrier between the log entry and the update
        c.store(DATA, b"\x0b" * 8, label="update")
        c.clwb(DATA)

    return _single(t0)


def _strand_clean_pair() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(LOG, b"\x0a" * 8, label="log:store")
        c.clwb(LOG)
        c.persist_barrier()  # Fig. 5 pair ordering
        c.store(DATA, b"\x0b" * 8, label="update")
        c.clwb(DATA)
        c.new_strand()

    return _single(t0)


# ----------------------------------------------------------------------
# 3. persist-race
# ----------------------------------------------------------------------


def _race_unlocked() -> Program:
    prog = Program(2)
    for tid, byte in ((0, b"\xaa"), (1, b"\xbb")):
        c = TraceCursor(prog, tid)
        c.store(SHARED, byte * 8)  # bug: same line, no common lock
        c.clwb(SHARED)
    return prog


def _race_locked_clean() -> Program:
    prog = Program(2)
    for tid, byte in ((0, b"\xaa"), (1, b"\xbb")):
        c = TraceCursor(prog, tid)
        c.lock(0)
        c.store(SHARED, byte * 8)
        c.clwb(SHARED)
        c.unlock(0)
    return prog


# ----------------------------------------------------------------------
# 4. over-serialization
# ----------------------------------------------------------------------


def _overser_double_clwb() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x01" * 8)
        c.clwb(DATA)
        c.clwb(DATA)  # lint: line is already clean

    return _single(t0)


def _overser_b2b_sfence() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x01" * 8)
        c.clwb(DATA)
        c.sfence()
        c.sfence()  # lint: orders nothing

    return _single(t0)


def _overser_empty_pb() -> Program:
    def t0(c: TraceCursor) -> None:
        c.persist_barrier()  # lint: no persist behind it
        c.store(DATA, b"\x01" * 8)
        c.clwb(DATA)

    return _single(t0)


def _overser_clean() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x01" * 8)
        c.clwb(DATA)
        c.persist_barrier()
        c.store(DATA2, b"\x02" * 8)
        c.clwb(DATA2)

    return _single(t0)


# ----------------------------------------------------------------------
# 5. torn-write
# ----------------------------------------------------------------------


def _torn_store() -> Program:
    def t0(c: TraceCursor) -> None:
        # 128B store spanning two lines, outside any failure-atomic region.
        c.store(DATA, b"\x5a" * 128, on_line_cross="allow")
        c.clwb(DATA)
        c.clwb(DATA + 64)

    return _single(t0)


def _torn_guarded_clean() -> Program:
    def t0(c: TraceCursor) -> None:
        c.region = 7  # inside a failure-atomic region: logging covers it
        c.store(DATA, b"\x5a" * 128, on_line_cross="allow")
        c.clwb(DATA)
        c.clwb(DATA + 64)
        c.region = -1

    return _single(t0)


# ----------------------------------------------------------------------
# 6. crash-during-recovery / media-fault interactions (PR 5)
#
# These twins model the write shapes the re-entrant recovery passes and
# the media fault layer produce: clearing undo-log entries after replay,
# re-flushing a line the device NACKed and the driver retried, and
# persisting into a spare line after a media remap.  Each changes the
# durable frontier in a way the corresponding diagnostic class must
# still reason about correctly.
# ----------------------------------------------------------------------


def _recovery_clear_race() -> Program:
    def t0(c: TraceCursor) -> None:
        # Recovery replays the log, then clears the entry and publishes a
        # fresh commit marker.  Opening a strand in between lets a crash
        # *during the next recovery* see the marker without the clear —
        # the re-entrant pass would replay a stale entry.
        c.store(LOG, b"\x00" * 8, label="log:clear")
        c.clwb(LOG)
        c.new_strand()  # bug: clear and marker race
        c.store(MARKER, b"\x02", label=COMMIT_MARKER_LABEL)
        c.clwb(MARKER)

    return _single(t0)


def _recovery_clear_ordered() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(LOG, b"\x00" * 8, label="log:clear")
        c.clwb(LOG)
        c.persist_barrier()  # clear persists before the marker
        c.store(MARKER, b"\x02", label=COMMIT_MARKER_LABEL)
        c.clwb(MARKER)

    return _single(t0)


def _retry_double_flush() -> Program:
    def t0(c: TraceCursor) -> None:
        # A driver retrying a media-NACKed persist re-issues the CLWB
        # after the drain — but the first flush already succeeded and the
        # line was never re-dirtied, so the retry is pure overhead.
        c.store(DATA, b"\x3c" * 8)
        c.clwb(DATA)
        c.join_strand()
        c.clwb(DATA)  # lint: retry of an already-clean line

    return _single(t0)


def _retry_reflush_clean() -> Program:
    def t0(c: TraceCursor) -> None:
        # The correct retry: the device dropped the write, so recovery
        # re-writes the payload before flushing again.
        c.store(DATA, b"\x3c" * 8)
        c.clwb(DATA)
        c.join_strand()
        c.store(DATA, b"\x3c" * 8)  # re-dirty after the media fault
        c.clwb(DATA)

    return _single(t0)


def _remap_unordered() -> Program:
    def t0(c: TraceCursor) -> None:
        # After a spare-line remap the log entry lands on a fresh line;
        # the remap does not change the Fig. 5 obligation — the entry
        # must still persist before the in-place update.
        c.store(DATA2, b"\x0a" * 8, label="log:store")
        c.clwb(DATA2)
        # bug: no barrier between the remapped entry and the update
        c.store(LOG, b"\x0b" * 8, label="update")
        c.clwb(LOG)

    return _single(t0)


def _remap_ordered() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA2, b"\x0a" * 8, label="log:store")
        c.clwb(DATA2)
        c.persist_barrier()
        c.store(LOG, b"\x0b" * 8, label="update")
        c.clwb(LOG)

    return _single(t0)


def _recovery_rollback_unflushed() -> Program:
    def t0(c: TraceCursor) -> None:
        # A crashing recovery pass rolls the update back from the log but
        # never writes the rollback back — the next crash loses it while
        # the marker says recovery completed.
        c.store(DATA, b"\x99" * 8, label="rollback")  # bug: never flushed
        c.join_strand()
        c.store(MARKER, b"\x03", label=COMMIT_MARKER_LABEL)
        c.clwb(MARKER)

    return _single(t0)


def _recovery_rollback_flushed() -> Program:
    def t0(c: TraceCursor) -> None:
        c.store(DATA, b"\x99" * 8, label="rollback")
        c.clwb(DATA)
        c.join_strand()
        c.store(MARKER, b"\x03", label=COMMIT_MARKER_LABEL)
        c.clwb(MARKER)

    return _single(t0)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_CASES = (
    LitmusCase(
        name="unflushed-no-clwb",
        design="strandweaver",
        description="data store is never written back before its commit marker",
        build=_unflushed_no_clwb,
        expect=UNFLUSHED,
        expect_rule="never-flushed",
        expect_severity=Severity.ERROR,
        bug_site=(0, 0),
    ),
    LitmusCase(
        name="unflushed-unordered-commit",
        design="strandweaver",
        description="NewStrand lets the commit marker race the data persist",
        build=_unflushed_unordered_commit,
        expect=UNFLUSHED,
        expect_rule="no-path-to-marker",
        expect_severity=Severity.ERROR,
        bug_site=(0, 0),
    ),
    LitmusCase(
        name="unflushed-clean",
        design="strandweaver",
        description="data flushed and barrier-ordered before the marker",
        build=_unflushed_clean,
    ),
    LitmusCase(
        name="strand-discarded-barrier",
        design="strandweaver",
        description="NewStrand immediately after a persist barrier",
        build=_strand_discarded_barrier,
        expect=STRAND_MISUSE,
        expect_rule="barrier-discarded",
        expect_severity=Severity.WARNING,
        bug_site=(0, 3),
    ),
    LitmusCase(
        name="strand-join-nothing",
        design="strandweaver",
        description="JoinStrand with no open strand to merge",
        build=_strand_join_nothing,
        expect=STRAND_MISUSE,
        expect_rule="join-nothing",
        expect_severity=Severity.WARNING,
        bug_site=(0, 3),
    ),
    LitmusCase(
        name="strand-unordered-pair",
        design="strandweaver",
        description="undo-log entry and in-place update with no barrier",
        build=_strand_unordered_pair,
        expect=STRAND_MISUSE,
        expect_rule="unordered-pair",
        expect_severity=Severity.ERROR,
        bug_site=(0, 2),
    ),
    LitmusCase(
        name="strand-clean-pair",
        design="strandweaver",
        description="Fig. 5 log/update pair with the required barrier",
        build=_strand_clean_pair,
    ),
    LitmusCase(
        name="race-unlocked",
        design="strandweaver",
        description="two threads persist the same line with no common lock",
        build=_race_unlocked,
        expect=PERSIST_RACE,
        expect_rule="conflicting-access",
        expect_severity=Severity.ERROR,
        bug_site=(1, 0),
    ),
    LitmusCase(
        name="race-locked-clean",
        design="strandweaver",
        description="same access pattern, serialized by a shared lock",
        build=_race_locked_clean,
    ),
    LitmusCase(
        name="overser-double-clwb",
        design="strandweaver",
        description="flushing a line that is already clean",
        build=_overser_double_clwb,
        expect=OVER_SERIALIZATION,
        expect_rule="redundant-flush",
        expect_severity=Severity.ADVICE,
        bug_site=(0, 2),
    ),
    LitmusCase(
        name="overser-b2b-sfence",
        design="intel-x86",
        description="back-to-back SFENCEs with nothing between them",
        build=_overser_b2b_sfence,
        expect=OVER_SERIALIZATION,
        expect_rule="back-to-back-fence",
        expect_severity=Severity.ADVICE,
        bug_site=(0, 3),
    ),
    LitmusCase(
        name="overser-empty-pb",
        design="strandweaver",
        description="persist barrier with no persist behind it",
        build=_overser_empty_pb,
        expect=OVER_SERIALIZATION,
        expect_rule="empty-barrier",
        expect_severity=Severity.ADVICE,
        bug_site=(0, 0),
    ),
    LitmusCase(
        name="overser-clean",
        design="strandweaver",
        description="every flush and barrier does useful work",
        build=_overser_clean,
    ),
    LitmusCase(
        name="torn-store",
        design="strandweaver",
        description="two-line store outside any failure-atomic region",
        build=_torn_store,
        expect=TORN_WRITE,
        expect_rule="multi-line-store",
        expect_severity=Severity.WARNING,
        bug_site=(0, 0),
    ),
    LitmusCase(
        name="torn-guarded-clean",
        design="strandweaver",
        description="same store, guarded by a failure-atomic region",
        build=_torn_guarded_clean,
    ),
    LitmusCase(
        name="recovery-clear-race",
        design="strandweaver",
        description="recovery's log clear races its fresh commit marker",
        build=_recovery_clear_race,
        expect=UNFLUSHED,
        expect_rule="no-path-to-marker",
        expect_severity=Severity.ERROR,
        bug_site=(0, 0),
    ),
    LitmusCase(
        name="recovery-clear-ordered",
        design="strandweaver",
        description="log clear barriered before the recovery marker",
        build=_recovery_clear_ordered,
    ),
    LitmusCase(
        name="retry-double-flush",
        design="strandweaver",
        description="media-retry re-flushes a line that stayed clean",
        build=_retry_double_flush,
        expect=OVER_SERIALIZATION,
        expect_rule="redundant-flush",
        expect_severity=Severity.ADVICE,
        bug_site=(0, 3),
    ),
    LitmusCase(
        name="retry-reflush-clean",
        design="strandweaver",
        description="media-retry re-dirties the line before re-flushing",
        build=_retry_reflush_clean,
    ),
    LitmusCase(
        name="remap-unordered",
        design="strandweaver",
        description="spare-line remap drops the log/update barrier",
        build=_remap_unordered,
        expect=STRAND_MISUSE,
        expect_rule="unordered-pair",
        expect_severity=Severity.ERROR,
        bug_site=(0, 2),
    ),
    LitmusCase(
        name="remap-ordered",
        design="strandweaver",
        description="remapped log entry still barriered before the update",
        build=_remap_ordered,
    ),
    LitmusCase(
        name="recovery-rollback-unflushed",
        design="strandweaver",
        description="crashing recovery rolls back without writing back",
        build=_recovery_rollback_unflushed,
        expect=UNFLUSHED,
        expect_rule="never-flushed",
        expect_severity=Severity.ERROR,
        bug_site=(0, 0),
    ),
    LitmusCase(
        name="recovery-rollback-flushed",
        design="strandweaver",
        description="rollback flushed and drained before the marker",
        build=_recovery_rollback_flushed,
    ),
)

LITMUS: Dict[str, LitmusCase] = {case.name: case for case in _CASES}
