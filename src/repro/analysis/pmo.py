"""Declarative persist memory order: an independent encoding of Eqs. 1-4.

:class:`~repro.core.model.PersistDag` is the *operational* formalisation
of the paper's strand persistency model: it builds ordering edges node by
node, in visibility order, with nearest-non-empty-epoch ladders and
virtual drain/acquire nodes.  This module encodes the same axioms
*declaratively*: every relation of Section III is written down as an
explicit set of ordered store pairs over the design-projected trace,

* **eq1** — intra-strand persist barriers: two stores of the same thread
  and same strand instance are ordered when the first's sub-epoch is
  strictly smaller (a persist barrier separates them, Eq. 1);
* **eq2** — ``JoinStrand``: two stores of the same thread are ordered
  when the first's join epoch is strictly smaller (Eq. 2);
* **eq3** — strong persist atomicity: byte-conflicting stores anywhere
  in the program are ordered by visibility order (Eq. 3);
* **sync** — durability transfer across lock hand-off: every store
  durable at a releaser's last synchronous drain precedes every store
  the acquirer issues after taking the lock;

and Eq. 4 (transitivity) is the reflexive-transitive closure of their
union.  The reachable crash states are exactly the **down-closed store
sets** of that closure.

Nothing here is shared with :class:`PersistDag` beyond the op stream and
the :class:`~repro.analysis.semantics.DesignSemantics` vocabulary — no
ladders, no virtual nodes, no epoch grouping — which is the point: the
model checker (:mod:`repro.analysis.modelcheck`) compares the two
formalisations pairwise and state-by-state, so a bug in either encoding
surfaces as a divergence instead of silently shipping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.semantics import DesignSemantics, semantics_for
from repro.core.ops import FENCE_KINDS, Op, OpKind, Program

#: default ceiling on enumerated crash states (mirrors enumerate_cuts).
DEFAULT_STATE_LIMIT = 200_000

#: the four relation names of the declarative encoding.
RELATIONS = ("eq1", "eq2", "eq3", "sync")

#: stable identity of one store: (tid, seq) in the source trace.
StoreKey = Tuple[int, int]


class StateSpaceExceeded(ValueError):
    """Reachable-state enumeration passed the configured budget."""


@dataclass(frozen=True)
class StoreLabel:
    """Strand coordinates of one projected store (declarative view)."""

    strand: int
    sub_epoch: int
    js_epoch: int


class _ThreadState:
    """Per-thread labelling state while reading the trace once."""

    def __init__(self) -> None:
        self.strand = 0
        self.next_strand = 1
        self.sub_epoch = 0
        self.js_epoch = 0
        #: indices (into DeclarativePmo.stores) of this thread's stores.
        self.own: List[int] = []
        #: store indices inherited through lock acquisitions: everything
        #: here is durable before any of this thread's later stores.
        self.sync_in: Set[int] = set()
        #: snapshot taken at the last synchronous drain: own stores so
        #: far plus everything inherited by then.  None before any drain.
        self.drained: Optional[FrozenSet[int]] = None


class DeclarativePmo:
    """Eqs. 1-4 as explicit relations over one design-projected trace."""

    def __init__(self, program: Program, sem) -> None:
        if isinstance(sem, str):
            sem = semantics_for(sem)
        self.semantics: DesignSemantics = sem
        self.stores: List[Op] = []
        self.labels: List[StoreLabel] = []
        #: (tid, seq) -> index into ``stores``.
        self.index_of: Dict[StoreKey, int] = {}
        #: relation name -> set of (earlier, later) store-index pairs.
        self.edges: Dict[str, Set[Tuple[int, int]]] = {r: set() for r in RELATIONS}
        self._build(program)
        #: transitive closure: ancestors[i] = every index PMO-before i.
        self.ancestors: List[FrozenSet[int]] = self._close()

    # -- construction ------------------------------------------------------

    def _build(self, program: Program) -> None:
        sem = self.semantics
        threads = [_ThreadState() for _ in range(program.n_threads)]
        #: per-byte write history in visibility order (Eq. 3).
        byte_writers: Dict[int, List[int]] = {}
        #: lock id -> durable snapshot of the last releasing thread.
        lock_snapshot: Dict[int, FrozenSet[int]] = {}

        for op in program.all_ops():
            kind = op.kind
            if kind in FENCE_KINDS and kind not in sem.honored:
                continue  # this hardware never sees the primitive
            st = threads[op.tid]
            if kind is OpKind.NEW_STRAND:
                if sem.has_strands:
                    st.strand = st.next_strand
                    st.next_strand += 1
                    st.sub_epoch = 0
            elif kind in sem.drain_kinds:
                st.sub_epoch += 1
                st.js_epoch += 1
                st.drained = frozenset(st.own) | frozenset(st.sync_in)
            elif kind in sem.barrier_kinds:
                st.sub_epoch += 1
            elif kind is OpKind.LOCK_REL:
                if st.drained is not None:
                    lock_snapshot[op.lock_id] = st.drained
            elif kind is OpKind.LOCK_ACQ:
                st.sync_in |= lock_snapshot.get(op.lock_id, frozenset())
            elif kind is OpKind.STORE:
                idx = len(self.stores)
                self.stores.append(op)
                self.labels.append(
                    StoreLabel(st.strand, st.sub_epoch, st.js_epoch)
                )
                self.index_of[(op.tid, op.seq)] = idx
                # eq1 / eq2: against every earlier store of this thread.
                lbl = self.labels[idx]
                for prev in st.own:
                    plbl = self.labels[prev]
                    if plbl.strand == lbl.strand and plbl.sub_epoch < lbl.sub_epoch:
                        self.edges["eq1"].add((prev, idx))
                    if plbl.js_epoch < lbl.js_epoch:
                        self.edges["eq2"].add((prev, idx))
                # eq3: every earlier writer of any byte this store touches.
                conflicting: Set[int] = set()
                for byte in range(op.addr, op.addr + op.size):
                    writers = byte_writers.setdefault(byte, [])
                    conflicting.update(writers)
                    writers.append(idx)
                for prev in conflicting:
                    self.edges["eq3"].add((prev, idx))
                # sync: durability handed over through lock acquisition.
                for prev in st.sync_in:
                    self.edges["sync"].add((prev, idx))
                st.own.append(idx)

    def _close(self) -> List[FrozenSet[int]]:
        """Eq. 4: transitive closure, one pass in visibility order.

        Every relation points from an earlier store (smaller index: the
        store list is built in gseq order) to a later one, so ancestors
        accumulate monotonically left to right.
        """
        preds: List[Set[int]] = [set() for _ in self.stores]
        for pairs in self.edges.values():
            for a, b in pairs:
                preds[b].add(a)
        out: List[FrozenSet[int]] = []
        for idx in range(len(self.stores)):
            anc: Set[int] = set()
            for p in preds[idx]:
                anc.add(p)
                anc |= out[p]
            out.append(frozenset(anc))
        return out

    # -- queries -----------------------------------------------------------

    @property
    def n_stores(self) -> int:
        return len(self.stores)

    def key_of(self, idx: int) -> StoreKey:
        op = self.stores[idx]
        return (op.tid, op.seq)

    def ordered_before(self, a: int, b: int) -> bool:
        """True when store ``a`` is PMO-before store ``b`` (Eqs. 1-4)."""
        return a in self.ancestors[b]

    def ordered_before_ops(self, a: Op, b: Op) -> bool:
        ia = self.index_of.get((a.tid, a.seq))
        ib = self.index_of.get((b.tid, b.seq))
        if ia is None or ib is None:
            return False
        return self.ordered_before(ia, ib)

    def order_pairs(self) -> Set[Tuple[StoreKey, StoreKey]]:
        """Every ordered store pair of the full PMO, by stable op key."""
        out: Set[Tuple[StoreKey, StoreKey]] = set()
        for b, anc in enumerate(self.ancestors):
            kb = self.key_of(b)
            for a in anc:
                out.add((self.key_of(a), kb))
        return out

    def is_reachable(self, keys) -> bool:
        """True when the store set ``keys`` is a reachable crash state.

        A state is reachable iff it is down-closed under the PMO: every
        included store's ancestors are included too.  Unknown keys (ops
        the projection removed, or non-stores) make the state
        unreachable by definition.
        """
        included: Set[int] = set()
        for key in keys:
            idx = self.index_of.get(tuple(key))
            if idx is None:
                return False
            included.add(idx)
        return all(self.ancestors[idx] <= included for idx in included)

    def reachable_states(
        self, limit: int = DEFAULT_STATE_LIMIT
    ) -> Iterator[FrozenSet[StoreKey]]:
        """Enumerate every reachable crash state (down-closed store set).

        Walks stores in visibility order branching on include/exclude; a
        store may be included only when all of its PMO ancestors are.
        Raises :class:`StateSpaceExceeded` past ``limit`` states, so the
        model checker can fall back to pairwise comparison on programs
        too large to enumerate.
        """
        n = self.n_stores
        produced = 0

        def rec(idx: int, included: Set[int]) -> Iterator[FrozenSet[StoreKey]]:
            nonlocal produced
            if idx == n:
                produced += 1
                if produced > limit:
                    raise StateSpaceExceeded(
                        f"more than {limit} reachable crash states; "
                        f"raise the budget or use pairwise checking"
                    )
                yield frozenset(self.key_of(i) for i in included)
                return
            yield from rec(idx + 1, included)
            if self.ancestors[idx] <= included:
                included.add(idx)
                yield from rec(idx + 1, included)
                included.remove(idx)

        yield from rec(0, set())

    def count_states(self, limit: int = DEFAULT_STATE_LIMIT) -> int:
        """Number of reachable crash states (bounded by ``limit``)."""
        return sum(1 for _ in self.reachable_states(limit))
