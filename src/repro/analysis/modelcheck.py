"""Exhaustive crash-state model checker: declarative vs operational vs oracle.

Three independent formalisations of "which PM states can a crash expose"
coexist in this repo:

1. the **declarative** PMO axioms — Eqs. 1-4 as explicit relations
   (:class:`repro.analysis.pmo.DeclarativePmo`);
2. the **operational** persist DAG the analyzer and chaos harness run on
   (:class:`repro.core.model.PersistDag` over the design projection); and
3. the **machine oracle** — the cycle-accurate simulator's durable
   frontier at injected crash points, materialised through the same
   :func:`repro.chaos.image.durable_cut` machinery ``repro crashtest``
   uses.

This module closes the loop between them, following the method of
*Taming x86-TSO Persistency* (Khyzha & Lahav): for litmus-sized
programs, enumerate **every** reachable crash state under (1) and (2)
and demand the families coincide; additionally demand the full ordered
store-pair relations coincide (which also covers programs too large to
enumerate), and demand every crash frontier the machine actually
produces is reachable in both models.  Any discrepancy becomes a
:class:`Divergence` diagnostic and a non-zero exit — a CI gate over the
litmus corpus.

Deliberate semantics bugs can be injected on the operational side only
(``mutate=``, see :data:`MUTATIONS`) to prove the checker has teeth: a
dropped barrier or an ignored ``NewStrand`` must surface as a
divergence, not pass silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.pmo import (
    DEFAULT_STATE_LIMIT,
    DeclarativePmo,
    StateSpaceExceeded,
    StoreKey,
)
from repro.analysis.semantics import (
    DesignSemantics,
    effective_program,
    semantics_for,
)
from repro.core.crash import enumerate_cuts
from repro.core.model import PersistDag
from repro.core.ops import FENCE_KINDS, OpKind, Program

MODELCHECK_SCHEMA = "repro.modelcheck/1"

#: crash-point fractions of the clean run's makespan the oracle samples.
ORACLE_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _weaken(sem: DesignSemantics, kinds: FrozenSet[OpKind]) -> DesignSemantics:
    """Stop honouring ``kinds``: the projection silently drops them."""
    return replace(
        sem,
        honored=sem.honored - kinds,
        barrier_kinds=sem.barrier_kinds - kinds,
        drain_kinds=sem.drain_kinds - kinds,
    )


#: seeded semantics bugs, applied to the *operational* side only.  Each
#: makes the operational model disagree with the declarative axioms on
#: any program exercising the dropped primitive — the mutation tests
#: prove such a disagreement is reported, never swallowed.
MUTATIONS = {
    # Persist barriers become no-ops: the operational model loses Eq. 1
    # edges and reaches crash states the axioms forbid.
    "drop-barrier": lambda sem: _weaken(
        sem,
        frozenset({OpKind.PERSIST_BARRIER, OpKind.SFENCE, OpKind.OFENCE}),
    ),
    # Synchronous drains become no-ops: Eq. 2 edges vanish operationally.
    "drop-join": lambda sem: _weaken(
        sem, frozenset({OpKind.JOIN_STRAND, OpKind.DFENCE})
    ),
    # NewStrand becomes a no-op: stores stay on one strand, so the
    # operational model gains Eq. 1 edges the axioms do not impose —
    # a divergence in the *opposite* direction (states the declarative
    # model allows but the operational model forbids).
    "ignore-newstrand": lambda sem: _weaken(
        sem, frozenset({OpKind.NEW_STRAND})
    ),
}


@dataclass(frozen=True)
class Divergence:
    """One disagreement between two of the three crash-state models."""

    #: ``order-pair`` (a PMO edge present in exactly one model),
    #: ``state-family`` (a crash state reachable in exactly one model),
    #: or ``oracle-frontier`` (a machine-produced frontier unreachable in
    #: a model).
    kind: str
    design: str
    message: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "design": self.design,
            "message": self.message,
            "detail": self.detail,
        }

    def render(self) -> str:
        return f"{self.kind:<16} [{self.design}] {self.message}"


@dataclass
class ModelCheckReport:
    """Outcome of model-checking one (program, design) pair."""

    target: str
    design: str
    n_stores: int = 0
    n_ops: int = 0
    #: reachable crash states per model; None when past the budget.
    declarative_states: Optional[int] = None
    operational_states: Optional[int] = None
    #: True when the state families were fully enumerated and compared;
    #: False means the budget was hit and only pairwise + oracle checks ran.
    exhaustive: bool = False
    order_pairs: int = 0  #: ordered store pairs in the declarative PMO
    oracle_samples: int = 0  #: machine crash frontiers cross-checked
    #: set when the oracle cross-check did not run, with the reason.
    oracle_skipped: Optional[str] = None
    mutation: Optional[str] = None
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def agree(self) -> bool:
        return not self.divergences

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": MODELCHECK_SCHEMA,
            "target": self.target,
            "design": self.design,
            "n_ops": self.n_ops,
            "n_stores": self.n_stores,
            "declarative_states": self.declarative_states,
            "operational_states": self.operational_states,
            "exhaustive": self.exhaustive,
            "order_pairs": self.order_pairs,
            "oracle_samples": self.oracle_samples,
            "oracle_skipped": self.oracle_skipped,
            "mutation": self.mutation,
            "agree": self.agree,
            "divergences": [d.to_json() for d in self.divergences],
        }

    def render(self) -> str:
        states = (
            f"{self.declarative_states} state(s)"
            if self.exhaustive
            else "states not enumerated (budget)"
        )
        mut = f" mutate={self.mutation}" if self.mutation else ""
        head = (
            f"modelcheck {self.target} [{self.design}]{mut}: "
            f"{self.n_stores} persist(s), {self.order_pairs} ordered pair(s), "
            f"{states}, {self.oracle_samples} oracle frontier(s) — "
            f"{'AGREE' if self.agree else f'{len(self.divergences)} DIVERGENCE(S)'}"
        )
        lines = [head]
        for d in self.divergences:
            lines.append(f"  {d.render()}")
        return "\n".join(lines)


# -- operational projections ------------------------------------------------


def _store_ancestors(dag: PersistDag) -> Dict[StoreKey, FrozenSet[StoreKey]]:
    """Store-to-store ancestor closure of the operational DAG.

    Virtual drain/acquire nodes are folded away: ancestors accumulate in
    one pass because predecessor indices are always smaller than the
    node's own (nodes are created in visibility order).
    """
    anc: List[Set[StoreKey]] = []
    out: Dict[StoreKey, FrozenSet[StoreKey]] = {}
    for node in dag.nodes:
        mine: Set[StoreKey] = set()
        for p in node.preds:
            mine |= anc[p]
            pred = dag.nodes[p]
            if pred.is_store:
                mine.add((pred.op.tid, pred.op.seq))
        anc.append(mine)
        if node.is_store:
            out[(node.op.tid, node.op.seq)] = frozenset(mine)
    return out


def _operational_pairs(
    anc: Dict[StoreKey, FrozenSet[StoreKey]]
) -> Set[Tuple[StoreKey, StoreKey]]:
    return {(a, b) for b, ancs in anc.items() for a in ancs}


def _operational_states(
    dag: PersistDag, limit: int
) -> Set[FrozenSet[StoreKey]]:
    """Every consistent cut of the DAG, projected onto store keys.

    Distinct cuts differing only in virtual nodes project to one state —
    the projection is exactly the crash-visible content.
    """
    out: Set[FrozenSet[StoreKey]] = set()
    for cut in enumerate_cuts(dag, limit=limit):
        out.add(
            frozenset(
                (dag.nodes[i].op.tid, dag.nodes[i].op.seq)
                for i in cut
                if dag.nodes[i].is_store
            )
        )
    return out


def _is_operationally_reachable(
    keys: Set[StoreKey], anc: Dict[StoreKey, FrozenSet[StoreKey]]
) -> bool:
    """Down-closure under the store-projected operational order.

    Projected cut families are exactly the down-sets of the projected
    order: any down-set extends to a consistent cut by adding every
    virtual node whose store ancestors are all included.
    """
    if not keys <= set(anc):
        return False
    return all(anc[k] <= keys for k in keys)


def _project_for_machine(
    program: Program, sem: DesignSemantics
) -> Tuple[Program, Dict[StoreKey, StoreKey]]:
    """Materialise the design projection as a runnable :class:`Program`.

    The timing simulator rejects foreign-dialect fences outright (each
    persistency domain validates its ISA), so the oracle runs a rebuilt
    trace with un-honoured fences dropped — which is exactly what those
    architectural no-ops mean.  Returns the rebuilt program plus a map
    from rebuilt store coordinates back to source ``(tid, seq)`` keys,
    since dropping ops renumbers per-thread sequences.
    """
    projected = Program(program.n_threads)
    key_map: Dict[StoreKey, StoreKey] = {}
    for op in program.all_ops():
        if op.kind in FENCE_KINDS and op.kind not in sem.honored:
            continue
        new = projected.emit(op.tid, replace(op))
        if op.kind is OpKind.STORE:
            key_map[(new.tid, new.seq)] = (op.tid, op.seq)
    return projected, key_map


def _fmt_state(keys: FrozenSet[StoreKey]) -> str:
    if not keys:
        return "{}"
    return "{" + ", ".join(f"t{t}:{s}" for t, s in sorted(keys)) + "}"


def _fmt_pair(pair: Tuple[StoreKey, StoreKey]) -> str:
    (at, as_), (bt, bs) = pair
    return f"t{at}:{as_} -> t{bt}:{bs}"


# -- the checker ------------------------------------------------------------


def check_program(
    program: Program,
    design: str,
    target: str = "<program>",
    budget: int = DEFAULT_STATE_LIMIT,
    oracle_samples: int = len(ORACLE_FRACTIONS),
    mutate: Optional[str] = None,
    machine_cfg=None,
) -> ModelCheckReport:
    """Model-check one program under one hardware design.

    ``budget`` bounds the exhaustive state enumeration (both models);
    when exceeded the checker degrades to pairwise order comparison plus
    the oracle cross-check and reports ``exhaustive=False``.
    ``oracle_samples`` machine runs are crashed at evenly spread points
    of the clean run's makespan and their durable frontiers checked for
    reachability in both models (0 disables the oracle).  ``mutate``
    names a seeded semantics bug from :data:`MUTATIONS`, applied to the
    operational side only.
    """
    sem = semantics_for(design)
    if mutate is not None:
        if mutate not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {mutate!r}; choose from {sorted(MUTATIONS)}"
            )
        op_sem = MUTATIONS[mutate](sem)
    else:
        op_sem = sem

    declarative = DeclarativePmo(program, sem)
    dag = PersistDag(effective_program(program, op_sem))
    anc = _store_ancestors(dag)

    report = ModelCheckReport(
        target=target,
        design=design,
        mutation=mutate,
        n_stores=declarative.n_stores,
        n_ops=len(program.all_ops()),
    )
    report.order_pairs = len(declarative.order_pairs())

    # 1. Pairwise: the ordered-store-pair relations must coincide.
    decl_pairs = declarative.order_pairs()
    oper_pairs = _operational_pairs(anc)
    for pair in sorted(decl_pairs - oper_pairs):
        report.divergences.append(
            Divergence(
                kind="order-pair",
                design=design,
                message=(
                    f"declarative PMO orders {_fmt_pair(pair)} but the "
                    f"operational DAG does not"
                ),
                detail={"pair": _fmt_pair(pair), "only_in": "declarative"},
            )
        )
    for pair in sorted(oper_pairs - decl_pairs):
        report.divergences.append(
            Divergence(
                kind="order-pair",
                design=design,
                message=(
                    f"operational DAG orders {_fmt_pair(pair)} but the "
                    f"declarative PMO does not"
                ),
                detail={"pair": _fmt_pair(pair), "only_in": "operational"},
            )
        )

    # 2. Exhaustive: the reachable crash-state families must coincide.
    try:
        decl_states = set(declarative.reachable_states(limit=budget))
        oper_states = _operational_states(dag, limit=budget)
    except (StateSpaceExceeded, ValueError):
        report.exhaustive = False
    else:
        report.exhaustive = True
        report.declarative_states = len(decl_states)
        report.operational_states = len(oper_states)
        for state in sorted(decl_states - oper_states, key=sorted):
            report.divergences.append(
                Divergence(
                    kind="state-family",
                    design=design,
                    message=(
                        f"crash state {_fmt_state(state)} reachable under "
                        f"the declarative axioms but not operationally"
                    ),
                    detail={"state": _fmt_state(state), "only_in": "declarative"},
                )
            )
        for state in sorted(oper_states - decl_states, key=sorted):
            report.divergences.append(
                Divergence(
                    kind="state-family",
                    design=design,
                    message=(
                        f"crash state {_fmt_state(state)} reachable "
                        f"operationally but forbidden by the declarative axioms"
                    ),
                    detail={"state": _fmt_state(state), "only_in": "operational"},
                )
            )

    # 3. Oracle: frontiers the machine actually produces must be
    #    reachable in both models.  The machine and the image builder are
    #    never mutated — they are the ground truth the models must admit.
    #    The PMO only constrains persists the program actually issues
    #    ordering for: an unflushed store can linger dirty in cache while
    #    later flushed persists land, so the machine legitimately escapes
    #    the models on unsynchronized programs — exactly the gap the lint
    #    reports as an ERROR.  The oracle therefore runs on lint-clean
    #    programs only (same division of labour as the chaos harness).
    if oracle_samples > 0:
        from repro.analysis.checks import analyze

        if analyze(program, design=design).ok:
            report.oracle_samples = _check_oracle(
                program, design, declarative, anc, report, oracle_samples,
                machine_cfg,
            )
        else:
            report.oracle_skipped = (
                "program has lint ERRORs under this design; the hardware "
                "makes no ordering promise for unsynchronized persists"
            )

    return report


def _check_oracle(
    program: Program,
    design: str,
    declarative: DeclarativePmo,
    anc: Dict[StoreKey, FrozenSet[StoreKey]],
    report: ModelCheckReport,
    samples: int,
    machine_cfg,
) -> int:
    """Crash real machine runs and check each frontier against both models."""
    from repro.chaos.image import durable_cut
    from repro.chaos.plan import FaultPlan
    from repro.sim.durability import CrashTrigger
    from repro.sim.machine import Machine

    def machine() -> "Machine":
        if machine_cfg is not None:
            return Machine(design, machine_cfg)
        return Machine(design)

    # The machine runs the concrete projection (foreign fences dropped);
    # the image builder's write-back guard consults the *unmutated*
    # operational DAG — the oracle validates the models against real
    # hardware behaviour, not against the seeded bug.
    runnable, key_map = _project_for_machine(program, semantics_for(design))
    horizon = machine().run(runnable).cycles
    if horizon <= 0:
        return 0
    oracle_dag = PersistDag(runnable)

    fractions = ORACLE_FRACTIONS[:samples]
    if len(fractions) < samples:
        fractions = tuple(
            (i + 1) / samples for i in range(samples)
        )
    checked = 0
    for frac in fractions:
        at = max(1, int(frac * horizon))
        plan = FaultPlan(
            trigger=CrashTrigger("cycle", at),
            seed=0,
            writeback_faults=False,
            drop_faults=False,
        )
        stats = machine().run(runnable, fault_plan=plan)
        crash = stats.crash
        if crash is None:
            continue
        ops, _info = durable_cut(crash, plan, oracle_dag)
        frontier = {key_map[(op.tid, op.seq)] for op in ops}
        checked += 1
        where = f"cycle {at}/{horizon}"
        if not declarative.is_reachable(frontier):
            report.divergences.append(
                Divergence(
                    kind="oracle-frontier",
                    design=design,
                    message=(
                        f"machine frontier {_fmt_state(frozenset(frontier))} "
                        f"at {where} is not reachable under the declarative "
                        f"axioms"
                    ),
                    detail={
                        "state": _fmt_state(frozenset(frontier)),
                        "crash_cycle": at,
                        "model": "declarative",
                    },
                )
            )
        if not _is_operationally_reachable(frontier, anc):
            report.divergences.append(
                Divergence(
                    kind="oracle-frontier",
                    design=design,
                    message=(
                        f"machine frontier {_fmt_state(frozenset(frontier))} "
                        f"at {where} is not a consistent cut of the "
                        f"operational DAG"
                    ),
                    detail={
                        "state": _fmt_state(frozenset(frontier)),
                        "crash_cycle": at,
                        "model": "operational",
                    },
                )
            )
    return checked


# -- corpus / CLI-facing entry points ---------------------------------------


def check_litmus(
    name: str,
    designs: Optional[Sequence[str]] = None,
    budget: int = DEFAULT_STATE_LIMIT,
    oracle_samples: int = len(ORACLE_FRACTIONS),
    mutate: Optional[str] = None,
) -> List[ModelCheckReport]:
    """Model-check one litmus case, by default under its native design."""
    from repro.analysis.litmus import LITMUS

    case = LITMUS[name]
    if designs is None:
        designs = [case.design]
    return [
        check_program(
            case.build(),
            design,
            target=name,
            budget=budget,
            oracle_samples=oracle_samples,
            mutate=mutate,
        )
        for design in designs
    ]


def check_corpus(
    designs: Sequence[str],
    budget: int = DEFAULT_STATE_LIMIT,
    oracle_samples: int = len(ORACLE_FRACTIONS),
    mutate: Optional[str] = None,
) -> Iterator[ModelCheckReport]:
    """Model-check every litmus case under every given design (CI gate)."""
    from repro.analysis.litmus import LITMUS

    for name in sorted(LITMUS):
        for report in check_litmus(
            name,
            designs=designs,
            budget=budget,
            oracle_samples=oracle_samples,
            mutate=mutate,
        ):
            yield report
