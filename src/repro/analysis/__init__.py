"""Static persist-order analysis for compiled StrandWeaver traces.

``analyze(program, design)`` lints a compiled :class:`~repro.core.ops.Program`
for crash-consistency bugs and over-serialization without running the
timing simulator or enumerating crash cuts.  See
:mod:`repro.analysis.checks` for the five diagnostic classes.

Beyond the linter, the package closes the analyzer/formal-model loop:

* :mod:`repro.analysis.pmo` — the declarative PMO axioms (Eqs. 1-4) as
  explicit relations, independent of the operational persist DAG;
* :mod:`repro.analysis.modelcheck` — exhaustive crash-state comparison
  of the declarative axioms, the operational DAG, and the machine
  oracle, with seeded-mutation self-tests;
* :mod:`repro.analysis.repair` — a suggested-fix engine that searches
  minimal primitive edits making a trace lint- and model-check-clean,
  pricing performance repairs in measured simulator cycles;
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 export for code scanning.
"""

from repro.analysis.checks import analyze
from repro.analysis.diagnostics import (
    ALL_CHECKS,
    LINT_SCHEMA,
    OVER_SERIALIZATION,
    PERSIST_RACE,
    STRAND_MISUSE,
    TORN_WRITE,
    UNFLUSHED,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.litmus import LITMUS, LitmusCase
from repro.analysis.modelcheck import (
    MODELCHECK_SCHEMA,
    MUTATIONS,
    Divergence,
    ModelCheckReport,
    check_corpus,
    check_litmus,
    check_program,
)
from repro.analysis.pmo import DeclarativePmo, StateSpaceExceeded
from repro.analysis.repair import (
    REPAIR_SCHEMA,
    Edit,
    RepairResult,
    apply_edits,
    repair,
)
from repro.analysis.sarif import (
    SARIF_VERSION,
    diagnostics_from_sarif,
    lint_to_sarif,
    modelcheck_to_sarif,
    report_from_sarif,
)
from repro.analysis.semantics import (
    SEMANTICS,
    DesignSemantics,
    EffectiveProgram,
    effective_program,
    semantics_for,
)

__all__ = [
    "ALL_CHECKS",
    "LINT_SCHEMA",
    "LITMUS",
    "MODELCHECK_SCHEMA",
    "MUTATIONS",
    "OVER_SERIALIZATION",
    "PERSIST_RACE",
    "REPAIR_SCHEMA",
    "SARIF_VERSION",
    "SEMANTICS",
    "STRAND_MISUSE",
    "TORN_WRITE",
    "UNFLUSHED",
    "AnalysisReport",
    "DeclarativePmo",
    "DesignSemantics",
    "Diagnostic",
    "Divergence",
    "Edit",
    "EffectiveProgram",
    "LitmusCase",
    "ModelCheckReport",
    "RepairResult",
    "Severity",
    "StateSpaceExceeded",
    "analyze",
    "apply_edits",
    "check_corpus",
    "check_litmus",
    "check_program",
    "diagnostics_from_sarif",
    "effective_program",
    "lint_to_sarif",
    "modelcheck_to_sarif",
    "repair",
    "report_from_sarif",
    "semantics_for",
]
