"""Static persist-order analysis for compiled StrandWeaver traces.

``analyze(program, design)`` lints a compiled :class:`~repro.core.ops.Program`
for crash-consistency bugs and over-serialization without running the
timing simulator or enumerating crash cuts.  See
:mod:`repro.analysis.checks` for the five diagnostic classes.
"""

from repro.analysis.checks import analyze
from repro.analysis.diagnostics import (
    ALL_CHECKS,
    LINT_SCHEMA,
    OVER_SERIALIZATION,
    PERSIST_RACE,
    STRAND_MISUSE,
    TORN_WRITE,
    UNFLUSHED,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.litmus import LITMUS, LitmusCase
from repro.analysis.semantics import (
    SEMANTICS,
    DesignSemantics,
    EffectiveProgram,
    effective_program,
    semantics_for,
)

__all__ = [
    "ALL_CHECKS",
    "LINT_SCHEMA",
    "LITMUS",
    "OVER_SERIALIZATION",
    "PERSIST_RACE",
    "SEMANTICS",
    "STRAND_MISUSE",
    "TORN_WRITE",
    "UNFLUSHED",
    "AnalysisReport",
    "DesignSemantics",
    "Diagnostic",
    "EffectiveProgram",
    "LitmusCase",
    "Severity",
    "analyze",
    "effective_program",
    "semantics_for",
]
