"""Diagnostic objects and the report emitted by the static analyzer.

Every finding is anchored to one micro-op — ``(tid, seq)`` is the stable
coordinate (thread id, index within that thread's stream), ``gseq`` the
global visibility slot — so a diagnostic can be traced back to the exact
instruction in the compiled :class:`~repro.core.ops.Program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional

from repro.core.ops import Op

#: diagnostic classes (one per check of the analyzer).
UNFLUSHED = "unflushed-persist"
STRAND_MISUSE = "strand-misuse"
PERSIST_RACE = "persist-race"
OVER_SERIALIZATION = "over-serialization"
TORN_WRITE = "torn-write"

ALL_CHECKS = (UNFLUSHED, STRAND_MISUSE, PERSIST_RACE, OVER_SERIALIZATION, TORN_WRITE)

LINT_SCHEMA = "repro.lint/1"


class Severity(IntEnum):
    """How bad a finding is.

    ``ERROR`` findings are crash-consistency bugs the differential chaos
    oracle can reproduce; ``WARNING`` findings are latent hazards; and
    ``ADVICE`` findings are performance lint (the paper's over-serialization
    motivation) that never affect correctness.
    """

    ADVICE = 0
    WARNING = 1
    ERROR = 2


@dataclass
class Diagnostic:
    """One finding of the static persist-order analyzer."""

    check: str  #: diagnostic class (one of :data:`ALL_CHECKS`)
    rule: str  #: sub-rule within the class, e.g. ``"no-path-to-marker"``
    severity: Severity
    tid: int
    seq: int  #: op index within the thread's stream
    gseq: int  #: global visibility slot
    message: str
    op: str = ""  #: repr of the anchoring op
    label: str = ""
    region: int = -1
    #: over-serialization only: persists/orderings needlessly serialized.
    estimated_waste: int = 0

    @classmethod
    def at(
        cls,
        op: Op,
        check: str,
        rule: str,
        severity: Severity,
        message: str,
        estimated_waste: int = 0,
    ) -> "Diagnostic":
        return cls(
            check=check,
            rule=rule,
            severity=severity,
            tid=op.tid,
            seq=op.seq,
            gseq=op.gseq,
            message=message,
            op=repr(op),
            label=op.label,
            region=op.region,
            estimated_waste=estimated_waste,
        )

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "check": self.check,
            "rule": self.rule,
            "severity": self.severity.name,
            "tid": self.tid,
            "seq": self.seq,
            "gseq": self.gseq,
            "message": self.message,
            "op": self.op,
        }
        if self.label:
            out["label"] = self.label
        if self.region >= 0:
            out["region"] = self.region
        if self.estimated_waste:
            out["estimated_waste"] = self.estimated_waste
        return out

    def render(self) -> str:
        loc = f"t{self.tid}:{self.seq}"
        return f"{self.severity.name:<7} {self.check:<18} {loc:<9} {self.message}"


@dataclass
class AnalysisReport:
    """All findings of one analyzer run over one (program, design) pair."""

    design: str
    n_ops: int = 0
    n_stores: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    # -- views ----------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def advisories(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ADVICE]

    @property
    def ok(self) -> bool:
        """No ERROR-level finding (warnings and advice do not fail a lint)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No finding of any severity."""
        return not self.diagnostics

    def by_check(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.diagnostics:
            out[d.check] = out.get(d.check, 0) + 1
        return out

    @property
    def estimated_waste(self) -> int:
        """Total persists/orderings the over-serialization lint found wasted."""
        return sum(d.estimated_waste for d in self.diagnostics)

    def finalize(self) -> "AnalysisReport":
        """Deduplicate and impose a deterministic, byte-stable order.

        Findings are keyed on their identity (anchor op, class, rule,
        severity, message); a check re-reporting the same fact folds to
        one diagnostic.  Order is op-index-major — ``(tid, seq, gseq)``,
        then class/rule, most severe first on exact ties — so two runs
        over the same program serialize to byte-identical JSON.
        """
        seen = set()
        unique: List[Diagnostic] = []
        for d in self.diagnostics:
            key = (d.tid, d.seq, d.check, d.rule, int(d.severity), d.message)
            if key not in seen:
                seen.add(key)
                unique.append(d)
        unique.sort(
            key=lambda d: (d.tid, d.seq, d.gseq, d.check, d.rule, -int(d.severity))
        )
        self.diagnostics = unique
        return self

    # -- output ---------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": LINT_SCHEMA,
            "design": self.design,
            "n_ops": self.n_ops,
            "n_stores": self.n_stores,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "advisories": len(self.advisories),
            "estimated_waste": self.estimated_waste,
            "by_check": self.by_check(),
            "ok": self.ok,
            "findings": [d.to_json() for d in self.diagnostics],
        }

    def render(self) -> str:
        head = (
            f"lint [{self.design}]: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.advisories)} "
            f"advisory(ies) over {self.n_ops} ops / {self.n_stores} persists"
        )
        lines = [head]
        for d in self.diagnostics:
            lines.append(f"  {d.render()}")
        if self.estimated_waste:
            lines.append(
                f"  ~{self.estimated_waste} wasted ordering(s)/flush(es) "
                f"(advisory estimate)"
            )
        if self.clean:
            lines.append("  clean")
        return "\n".join(lines)
