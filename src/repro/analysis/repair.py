"""Suggested-fix repair engine for analyzer diagnostics.

Where the linter (:mod:`repro.analysis.checks`) stops at "this trace is
broken", this module searches for the **minimal primitive edit** — a
flush or ordering-fence insertion for the safety classes, a redundant
primitive deletion for the performance class — that makes the trace
lint-clean *and* model-check-clean, and proves it by re-running both:

* ``unflushed-persist / never-flushed`` — insert a covering ``CLWB``
  directly after the orphaned store;
* ``unflushed-persist / no-path-to-marker`` — insert the weakest
  ordering primitive of the design's vocabulary (persist barrier before
  ``JoinStrand`` on strand hardware, ``OFENCE`` before ``DFENCE`` on
  HOPS, ``SFENCE`` on x86) in front of the commit marker;
* ``strand-misuse / unordered-pair`` — the same, in front of the
  in-place update;
* ``strand-misuse / barrier-discarded`` — delete the ``NewStrand`` that
  throws the barrier's edge away (keeping the persists on one strand
  restores the intended ordering);
* ``strand-misuse / join-nothing`` — delete the no-op ``JoinStrand``;
* ``over-serialization / *`` — delete the redundant flush, fence or
  barrier, then re-measure the program on the cycle-accurate simulator
  (:func:`repro.harness.sweep.measure_program_cycles`) to report the
  cycles actually saved — the repairer doubles as a measurable
  performance optimizer (the paper's motivation).

``persist-race`` and ``torn-write`` findings are reported as
unrepairable: fixing them needs locks or failure-atomic regions, i.e. a
program restructure no single-primitive edit can express.

An edit is **accepted** only if re-analysis shows the targeted finding
count strictly decreased and no WARNING-or-worse rule got more findings
than before; the final program must additionally model-check clean
(declarative/operational/oracle agreement, :mod:`.modelcheck`) before
the repair is declared verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.checks import UNDO_LOG_LABEL, UPDATE_LABEL, analyze  # noqa: F401
from repro.analysis.diagnostics import (
    OVER_SERIALIZATION,
    PERSIST_RACE,
    STRAND_MISUSE,
    TORN_WRITE,
    UNFLUSHED,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.semantics import DesignSemantics, semantics_for
from repro.core.ops import Op, OpKind, Program

REPAIR_SCHEMA = "repro.repair/1"

#: diagnostic classes a single-primitive edit can address.
REPAIRABLE = (UNFLUSHED, STRAND_MISUSE, OVER_SERIALIZATION)


@dataclass(frozen=True)
class Edit:
    """One primitive insertion or deletion on a thread's op stream.

    ``index`` is the per-thread position **in the program the edit was
    generated against** (edits apply sequentially: each later edit's
    coordinates refer to the already-edited trace).  An ``insert`` puts
    the new op *before* ``index``; ``index == len(thread)`` appends.
    """

    action: str  #: ``"insert"`` or ``"delete"``
    tid: int
    index: int
    kind: Optional[OpKind] = None  #: inserted op kind (insert only)
    addr: int = 0  #: CLWB target address (insert of CLWB only)
    size: int = 0  #: CLWB coverage in bytes (insert of CLWB only)
    note: str = ""  #: what this edit fixes, for humans

    def describe(self) -> str:
        if self.action == "insert":
            what = self.kind.name if self.kind is not None else "?"
            if self.kind is OpKind.CLWB:
                what += f"(0x{self.addr:x},{self.size})"
            return f"insert {what} at t{self.tid}:{self.index}"
        return f"delete op at t{self.tid}:{self.index}"

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "action": self.action,
            "tid": self.tid,
            "index": self.index,
        }
        if self.kind is not None:
            out["kind"] = self.kind.name
        if self.kind is OpKind.CLWB:
            out["addr"] = self.addr
            out["size"] = self.size
        if self.note:
            out["note"] = self.note
        return out


def _copy_op(op: Op) -> Op:
    """A fresh Op carrying everything ``Program.emit`` does not assign."""
    return Op(
        kind=op.kind,
        addr=op.addr,
        size=op.size,
        data=op.data,
        lock_id=op.lock_id,
        cycles=op.cycles,
        region=op.region,
        label=op.label,
    )


def _materialise(edit: Edit) -> Op:
    assert edit.kind is not None
    if edit.kind is OpKind.CLWB:
        return Op(OpKind.CLWB, addr=edit.addr, size=edit.size)
    return Op(edit.kind)


def apply_edits(program: Program, edits: Sequence[Edit]) -> Program:
    """Rebuild ``program`` with ``edits`` applied (coordinates refer to
    ``program`` as given; apply sequential edit batches one at a time)."""
    inserts: Dict[Tuple[int, int], List[Edit]] = {}
    deletes = set()
    for e in edits:
        if e.action == "insert":
            inserts.setdefault((e.tid, e.index), []).append(e)
        elif e.action == "delete":
            deletes.add((e.tid, e.index))
        else:
            raise ValueError(f"unknown edit action {e.action!r}")

    out = Program(program.n_threads)
    for op in program.all_ops():
        for e in inserts.pop((op.tid, op.seq), []):
            out.emit(e.tid, _materialise(e))
        if (op.tid, op.seq) in deletes:
            continue
        out.emit(op.tid, _copy_op(op))
    # End-of-thread appends (index past the last op).
    for (tid, _idx), pending in sorted(inserts.items()):
        for e in pending:
            out.emit(tid, _materialise(e))
    return out


# -- candidate generation ----------------------------------------------------


def _ordering_kinds(sem: DesignSemantics) -> List[OpKind]:
    """The design's ordering vocabulary, weakest primitive first."""
    pure = sorted(sem.barrier_kinds - sem.drain_kinds, key=lambda k: k.value)
    drains = sorted(sem.drain_kinds, key=lambda k: k.value)
    return pure + drains


def _op_at(program: Program, tid: int, seq: int) -> Op:
    return program.threads[tid].ops[seq]


def _next_marker_seq(program: Program, diag: Diagnostic) -> Optional[int]:
    from repro.lang.runtime import COMMIT_MARKER_LABEL

    for op in program.threads[diag.tid].ops:
        if (
            op.kind is OpKind.STORE
            and op.label == COMMIT_MARKER_LABEL
            and op.seq > diag.seq
        ):
            return op.seq
    return None


def _candidates(
    program: Program, diag: Diagnostic, sem: DesignSemantics
) -> List[List[Edit]]:
    """Alternative single-edit fixes for one diagnostic, best first."""
    tid, seq = diag.tid, diag.seq
    if diag.check == UNFLUSHED and diag.rule == "never-flushed":
        store = _op_at(program, tid, seq)
        return [
            [
                Edit(
                    "insert",
                    tid,
                    seq + 1,
                    kind=OpKind.CLWB,
                    addr=store.addr,
                    size=store.size,
                    note=f"write back the orphaned persist at t{tid}:{seq}",
                )
            ]
        ]
    if diag.check == UNFLUSHED and diag.rule == "no-path-to-marker":
        marker = _next_marker_seq(program, diag)
        if marker is None:
            return []
        return [
            [
                Edit(
                    "insert",
                    tid,
                    marker,
                    kind=kind,
                    note=(
                        f"order the persist at t{tid}:{seq} before its "
                        f"commit marker"
                    ),
                )
            ]
            for kind in _ordering_kinds(sem)
        ]
    if diag.check == STRAND_MISUSE and diag.rule == "unordered-pair":
        return [
            [
                Edit(
                    "insert",
                    tid,
                    seq,
                    kind=kind,
                    note="order the undo-log entry before its in-place update",
                )
            ]
            for kind in _ordering_kinds(sem)
        ]
    if diag.check == STRAND_MISUSE and diag.rule in ("barrier-discarded", "join-nothing"):
        return [
            [
                Edit(
                    "delete",
                    tid,
                    seq,
                    note=f"remove the {diag.rule} strand primitive",
                )
            ]
        ]
    if diag.check == OVER_SERIALIZATION:
        return [
            [
                Edit(
                    "delete",
                    tid,
                    seq,
                    note=f"remove the {diag.rule} primitive (pure overhead)",
                )
            ]
        ]
    return []


# -- acceptance --------------------------------------------------------------


def _rule_counts(report: AnalysisReport) -> Dict[Tuple[str, str], int]:
    out: Dict[Tuple[str, str], int] = {}
    for d in report.diagnostics:
        out[(d.check, d.rule)] = out.get((d.check, d.rule), 0) + 1
    return out


def _severity_of_rule(report: AnalysisReport, key: Tuple[str, str]) -> Severity:
    for d in report.diagnostics:
        if (d.check, d.rule) == key:
            return d.severity
    return Severity.ADVICE


def _accepted(
    before: AnalysisReport, after: AnalysisReport, target: Tuple[str, str]
) -> bool:
    """Did the edit fix the target without regressing anything that matters?

    Counts per (check, rule) are compared instead of op coordinates —
    insertions renumber every later op on the thread, so coordinates are
    not stable across an edit, but rule counts are.
    """
    b, a = _rule_counts(before), _rule_counts(after)
    if a.get(target, 0) >= b.get(target, 0):
        return False
    for key, n in a.items():
        sev = _severity_of_rule(after, key)
        if sev >= Severity.WARNING and n > b.get(key, 0):
            return False
    return True


# -- the engine --------------------------------------------------------------


@dataclass
class RepairResult:
    """Outcome of one repair search over one (program, design) pair."""

    target: str
    design: str
    edits: List[Edit] = field(default_factory=list)
    iterations: int = 0
    #: diagnostics no candidate edit could fix, with the reason.
    unrepaired: List[Dict[str, object]] = field(default_factory=list)
    lint_before: Dict[str, int] = field(default_factory=dict)
    lint_after: Dict[str, int] = field(default_factory=dict)
    lint_ok: bool = False  #: final trace has no lint ERROR
    lint_quiet: bool = False  #: final trace has no finding at all
    modelcheck_clean: bool = False  #: final trace passes the model checker
    #: simulator makespans, measured only when edits were accepted.
    cycles_before: Optional[int] = None
    cycles_after: Optional[int] = None
    program: Optional[Program] = field(default=None, repr=False)

    @property
    def cycles_saved(self) -> Optional[int]:
        if self.cycles_before is None or self.cycles_after is None:
            return None
        return self.cycles_before - self.cycles_after

    @property
    def verified(self) -> bool:
        """Lint-clean of errors, model-check-clean, nothing left behind."""
        return self.lint_ok and self.modelcheck_clean and not self.unrepaired

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": REPAIR_SCHEMA,
            "target": self.target,
            "design": self.design,
            "edits": [e.to_json() for e in self.edits],
            "edit_notes": [e.describe() + " — " + e.note for e in self.edits],
            "iterations": self.iterations,
            "unrepaired": self.unrepaired,
            "lint_before": self.lint_before,
            "lint_after": self.lint_after,
            "lint_ok": self.lint_ok,
            "lint_quiet": self.lint_quiet,
            "modelcheck_clean": self.modelcheck_clean,
            "cycles_before": self.cycles_before,
            "cycles_after": self.cycles_after,
            "cycles_saved": self.cycles_saved,
            "verified": self.verified,
        }

    def render(self) -> str:
        head = (
            f"repair {self.target} [{self.design}]: {len(self.edits)} edit(s) "
            f"in {self.iterations} iteration(s) — "
            f"{'VERIFIED' if self.verified else 'INCOMPLETE'}"
        )
        lines = [head]
        for e in self.edits:
            lines.append(f"  {e.describe()} — {e.note}")
        for u in self.unrepaired:
            lines.append(
                f"  unrepaired: {u['check']}/{u['rule']} at "
                f"t{u['tid']}:{u['seq']} — {u['reason']}"
            )
        lines.append(
            f"  lint: {self.lint_before} -> {self.lint_after} "
            f"(ok={self.lint_ok}, quiet={self.lint_quiet}); "
            f"modelcheck {'clean' if self.modelcheck_clean else 'DIVERGENT'}"
        )
        if self.cycles_saved is not None:
            lines.append(
                f"  cycles: {self.cycles_before} -> {self.cycles_after} "
                f"({self.cycles_saved:+d} saved)"
            )
        return "\n".join(lines)


def _pick(
    report: AnalysisReport, skipped: set
) -> Optional[Diagnostic]:
    """Most severe repairable finding not yet given up on."""
    best: Optional[Diagnostic] = None
    for d in report.diagnostics:
        if d.check not in REPAIRABLE:
            continue
        if (d.check, d.rule, d.tid, d.seq, d.message) in skipped:
            continue
        if best is None or (-int(d.severity), d.tid, d.seq) < (
            -int(best.severity),
            best.tid,
            best.seq,
        ):
            best = d
    return best


def repair(
    program: Program,
    design: str,
    target: str = "<program>",
    max_iters: int = 16,
    measure_cycles: bool = True,
    oracle_samples: int = 3,
    budget: Optional[int] = None,
) -> RepairResult:
    """Search for the minimal edit sequence fixing every repairable finding.

    Greedy severity-first: at each step the worst outstanding repairable
    diagnostic is attacked with its candidate edits (weakest primitive
    first — insertion order mirrors the design's vocabulary) and the
    first candidate surviving re-analysis is kept.  The loop ends when
    nothing repairable remains or ``max_iters`` is hit; the final trace
    is then verified end-to-end with the model checker, and — when any
    edit was accepted and ``measure_cycles`` — re-measured on the
    simulator so over-serialization repairs report real cycles saved.
    """
    from repro.analysis.modelcheck import DEFAULT_STATE_LIMIT, check_program

    sem = semantics_for(design)
    result = RepairResult(target=target, design=design)
    report = analyze(program, design=design)
    result.lint_before = report.by_check()

    skipped: set = set()
    current = program
    while result.iterations < max_iters:
        diag = _pick(report, skipped)
        if diag is None:
            break
        result.iterations += 1
        fixed = False
        for cand in _candidates(current, diag, sem):
            trial = apply_edits(current, cand)
            trial_report = analyze(trial, design=design)
            if _accepted(report, trial_report, (diag.check, diag.rule)):
                current = trial
                report = trial_report
                result.edits.extend(cand)
                skipped.clear()  # coordinates moved; retry everything
                fixed = True
                break
        if not fixed:
            skipped.add((diag.check, diag.rule, diag.tid, diag.seq, diag.message))
            result.unrepaired.append(
                {
                    "check": diag.check,
                    "rule": diag.rule,
                    "tid": diag.tid,
                    "seq": diag.seq,
                    "reason": "no candidate edit survived re-analysis",
                }
            )

    # Classes outside the repair vocabulary are reported, not guessed at.
    for d in report.diagnostics:
        if d.check in (PERSIST_RACE, TORN_WRITE) and d.severity >= Severity.WARNING:
            result.unrepaired.append(
                {
                    "check": d.check,
                    "rule": d.rule,
                    "tid": d.tid,
                    "seq": d.seq,
                    "reason": (
                        "needs locks or a failure-atomic region; not "
                        "expressible as a single-primitive edit"
                    ),
                }
            )

    result.program = current
    result.lint_after = report.by_check()
    result.lint_ok = report.ok
    result.lint_quiet = report.clean

    mc = check_program(
        current,
        design,
        target=target,
        budget=budget if budget is not None else DEFAULT_STATE_LIMIT,
        oracle_samples=oracle_samples,
    )
    result.modelcheck_clean = mc.agree

    if result.edits and measure_cycles:
        result.cycles_before = _measure(program, design)
        result.cycles_after = _measure(current, design)
    return result


def _measure(program: Program, design: str) -> int:
    """Makespan of the design projection on the cycle-accurate simulator."""
    from repro.analysis.modelcheck import _project_for_machine
    from repro.harness.sweep import measure_program_cycles

    runnable, _ = _project_for_machine(program, semantics_for(design))
    return measure_program_cycles(runnable, design)
