"""The five static checks of the persist-order analyzer.

:func:`analyze` consumes a compiled :class:`~repro.core.ops.Program` —
no timing simulation, no cut enumeration — and reports structured
diagnostics.  Ordering obligations are decided by the formal strand
persistency model: the trace is projected onto the primitives the target
design honours (:mod:`repro.analysis.semantics`) and a
:class:`~repro.core.model.PersistDag` is built over the projection, so
"is this persist ordered before its commit marker?" is answered by
Equations 1-4 rather than by pattern matching.

Checks (diagnostic class in parentheses):

1. **unflushed persist** (``unflushed-persist``) — a persistent STORE
   with no durably-ordering path (CLWB + the design's barrier/drain
   vocabulary) to its commit marker, or never written back at all.
2. **strand misuse** (``strand-misuse``) — a ``NewStrand`` that discards
   a persist barrier's ordering edge, a ``JoinStrand`` with nothing to
   join, and barrier-free undo-log/update dependencies.
3. **persistent data races** (``persist-race``) — a happens-before +
   lockset detector over ``LOCK_ACQ``/``LOCK_REL`` for conflicting
   same-cache-line persistent accesses across threads.
4. **over-serialization lint** (``over-serialization``) — redundant
   CLWBs, back-to-back fences, empty persist barriers; advisory only,
   with an estimate of the wasted orderings (the paper's motivation).
5. **torn-write hazard** (``torn-write``) — multi-cache-line stores with
   no failure-atomic region guarding them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import (
    OVER_SERIALIZATION,
    PERSIST_RACE,
    STRAND_MISUSE,
    TORN_WRITE,
    UNFLUSHED,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.semantics import (
    DesignSemantics,
    EffectiveProgram,
    effective_program,
    semantics_for,
)
from repro.core.model import PersistDag
from repro.core.ops import Op, OpKind, Program, lines_of
from repro.lang.runtime import COMMIT_MARKER_LABEL

#: undo-log entry label the runtime stamps on logged old values (Fig. 5).
UNDO_LOG_LABEL = "log:store"
#: in-place update label the runtime stamps on the paired store.
UPDATE_LABEL = "update"


def analyze(program: Program, design: str = "strandweaver") -> AnalysisReport:
    """Statically lint ``program`` for persistency bugs on ``design``."""
    sem = semantics_for(design)
    eff = effective_program(program, sem)
    dag = PersistDag(eff)
    report = AnalysisReport(
        design=design,
        n_ops=sum(len(t) for t in program.threads),
        n_stores=sum(
            1 for t in program.threads for op in t.ops if op.kind is OpKind.STORE
        ),
    )
    _check_unflushed(eff, dag, sem, report)
    _check_strand_misuse(eff, dag, sem, report)
    _check_persist_races(program, report)
    _check_over_serialization(eff, sem, report)
    _check_torn_writes(program, report)
    return report.finalize()


# ----------------------------------------------------------------------
# check 1: unflushed / unordered persists
# ----------------------------------------------------------------------


def _check_unflushed(
    eff: EffectiveProgram, dag: PersistDag, sem: DesignSemantics, report: AnalysisReport
) -> None:
    for tid in range(eff.n_threads):
        ops = eff.thread_ops(tid)
        stores = [op for op in ops if op.kind is OpKind.STORE]
        if not stores:
            continue
        markers = [op for op in stores if op.label == COMMIT_MARKER_LABEL]
        #: cache-line -> sorted seqs of CLWBs covering it on this thread.
        clwb_seqs: Dict[int, List[int]] = {}
        for op in ops:
            if op.kind is OpKind.CLWB:
                for line in lines_of(op.addr, op.size):
                    clwb_seqs.setdefault(line, []).append(op.seq)
        marker_ancestors: Dict[int, Set[int]] = {}
        for m in markers:
            node = dag.node_of.get((m.tid, m.seq))
            if node is not None:
                marker_ancestors[m.seq] = dag.downward_close([node])
        for op in stores:
            anchor = _next_marker(markers, op)
            _check_flush_coverage(op, anchor, clwb_seqs, report)
            if anchor is None:
                continue
            node = dag.node_of.get((op.tid, op.seq))
            if node is None or node not in marker_ancestors.get(anchor.seq, set()):
                vocab = (
                    ", ".join(sorted(k.name for k in sem.barrier_kinds | sem.drain_kinds))
                    or "none: this design provides no ordering primitives"
                )
                report.add(
                    Diagnostic.at(
                        op,
                        UNFLUSHED,
                        "no-path-to-marker",
                        Severity.ERROR,
                        f"persist has no ordering path to its commit marker "
                        f"t{anchor.tid}:{anchor.seq} under {sem.design} "
                        f"(ordering vocabulary: {vocab}); a crash can expose "
                        f"the commit without this update",
                    )
                )


def _next_marker(markers: Sequence[Op], op: Op) -> Optional[Op]:
    """First commit marker strictly after ``op`` on its thread."""
    for m in markers:
        if m.seq > op.seq:
            return m
    return None


def _check_flush_coverage(
    op: Op,
    anchor: Optional[Op],
    clwb_seqs: Dict[int, List[int]],
    report: AnalysisReport,
) -> None:
    limit = anchor.seq if anchor is not None else None
    for line in lines_of(op.addr, op.size):
        covered = any(
            seq > op.seq and (limit is None or seq < limit)
            for seq in clwb_seqs.get(line, ())
        )
        if not covered:
            where = (
                f"before its commit marker t{anchor.tid}:{anchor.seq}"
                if anchor is not None
                else "before the end of the program"
            )
            report.add(
                Diagnostic.at(
                    op,
                    UNFLUSHED,
                    "never-flushed",
                    Severity.ERROR,
                    f"store to line 0x{line * 64:x} is never written back "
                    f"(no covering CLWB) {where}; the dirty line is lost on "
                    f"power failure",
                )
            )
            return


# ----------------------------------------------------------------------
# check 2: strand misuse
# ----------------------------------------------------------------------


@dataclass
class _StrandScan:
    """Per-thread scan state for the structural strand rules."""

    strand_stores: int = 0  #: stores on the current strand instance
    last_pb: Optional[Op] = None
    stores_since_pb: int = 0
    pb_pred_count: int = 0
    ns_since_join: bool = False
    stores_since_join: int = 0


def _check_strand_misuse(
    eff: EffectiveProgram, dag: PersistDag, sem: DesignSemantics, report: AnalysisReport
) -> None:
    for tid in range(eff.n_threads):
        ops = eff.thread_ops(tid)
        if sem.has_strands:
            _scan_strand_structure(ops, report)
        _check_unordered_pairs(ops, dag, sem, report)


def _scan_strand_structure(ops: Sequence[Op], report: AnalysisReport) -> None:
    st = _StrandScan()
    for op in ops:
        kind = op.kind
        if kind is OpKind.STORE:
            st.strand_stores += 1
            st.stores_since_pb += 1
            st.stores_since_join += 1
        elif kind is OpKind.PERSIST_BARRIER:
            st.last_pb = op
            st.pb_pred_count = st.strand_stores
            st.stores_since_pb = 0
        elif kind is OpKind.NEW_STRAND:
            if st.last_pb is not None and st.stores_since_pb == 0 and st.pb_pred_count:
                report.add(
                    Diagnostic.at(
                        op,
                        STRAND_MISUSE,
                        "barrier-discarded",
                        Severity.WARNING,
                        f"NewStrand discards the ordering edge of the persist "
                        f"barrier at t{st.last_pb.tid}:{st.last_pb.seq}: no "
                        f"persist was issued between them, so later accesses "
                        f"that depended on that barrier drain unordered",
                    )
                )
            st.strand_stores = 0
            st.last_pb = None
            st.ns_since_join = True
        elif kind is OpKind.JOIN_STRAND:
            if not st.ns_since_join and st.stores_since_join == 0:
                report.add(
                    Diagnostic.at(
                        op,
                        STRAND_MISUSE,
                        "join-nothing",
                        Severity.WARNING,
                        "JoinStrand with no open strand: no NewStrand and no "
                        "persist since the previous join, so there is nothing "
                        "to merge or drain",
                    )
                )
            st.strand_stores = 0
            st.last_pb = None
            st.ns_since_join = False
            st.stores_since_join = 0


def _check_unordered_pairs(
    ops: Sequence[Op], dag: PersistDag, sem: DesignSemantics, report: AnalysisReport
) -> None:
    """Undo-log entries must be PMO-before their in-place updates."""
    pending: List[Op] = []
    for op in ops:
        if op.kind is not OpKind.STORE:
            continue
        if op.label == UNDO_LOG_LABEL:
            pending.append(op)
        elif op.label == UPDATE_LABEL and pending:
            log = pending.pop()
            if not dag.ordered_before_ops(log, op):
                report.add(
                    Diagnostic.at(
                        op,
                        STRAND_MISUSE,
                        "unordered-pair",
                        Severity.ERROR,
                        f"in-place update is not ordered after its undo-log "
                        f"entry t{log.tid}:{log.seq} under {sem.design}: a "
                        f"crash between the two persists leaves the update "
                        f"unrecoverable (Fig. 5 pair ordering)",
                    )
                )


# ----------------------------------------------------------------------
# check 3: persistent data races
# ----------------------------------------------------------------------


@dataclass
class _Access:
    op: Op
    own_clock: int
    lockset: frozenset


def _check_persist_races(program: Program, report: AnalysisReport) -> None:
    nt = program.n_threads
    vc: List[List[int]] = [[0] * nt for _ in range(nt)]
    lock_vc: Dict[int, List[int]] = {}
    held: List[Set[int]] = [set() for _ in range(nt)]
    by_line: Dict[int, List[_Access]] = {}
    seen: Set[Tuple[int, int, int, str]] = set()

    for op in program.all_ops():
        t = op.tid
        kind = op.kind
        if kind is OpKind.LOCK_ACQ:
            held[t].add(op.lock_id)
            prev = lock_vc.get(op.lock_id)
            if prev is not None:
                vc[t] = [max(a, b) for a, b in zip(vc[t], prev)]
        elif kind is OpKind.LOCK_REL:
            held[t].discard(op.lock_id)
            vc[t][t] += 1
            lock_vc[op.lock_id] = list(vc[t])
        elif kind in (OpKind.STORE, OpKind.LOAD):
            vc[t][t] += 1
            acc = _Access(op, vc[t][t], frozenset(held[t]))
            for line in lines_of(op.addr, op.size):
                for prev_acc in by_line.get(line, ()):
                    _maybe_race(prev_acc, acc, vc, line, seen, report)
                by_line.setdefault(line, []).append(acc)


def _maybe_race(
    prev: _Access,
    cur: _Access,
    vc: List[List[int]],
    line: int,
    seen: Set[Tuple[int, int, int, str]],
    report: AnalysisReport,
) -> None:
    a, b = prev.op, cur.op
    if a.tid == b.tid:
        return
    if a.kind is not OpKind.STORE and b.kind is not OpKind.STORE:
        return
    # happens-before: prev's release clock reached cur's thread?
    if prev.own_clock <= vc[b.tid][a.tid]:
        return
    if prev.lockset & cur.lockset:
        return
    overlap = a.addr < b.addr + b.size and b.addr < a.addr + a.size
    rule = "conflicting-access" if overlap else "false-sharing"
    key = (line, min(a.tid, b.tid), max(a.tid, b.tid), rule)
    if key in seen:
        return
    seen.add(key)
    if overlap:
        report.add(
            Diagnostic.at(
                b,
                PERSIST_RACE,
                rule,
                Severity.ERROR,
                f"unsynchronized conflicting persistent access with "
                f"t{a.tid}:{a.seq} ({a.kind.name} 0x{a.addr:x}): no common "
                f"lock and no happens-before edge orders the two, so the "
                f"persist order of line 0x{line * 64:x} is undefined",
            )
        )
    else:
        report.add(
            Diagnostic.at(
                b,
                PERSIST_RACE,
                rule,
                Severity.ADVICE,
                f"persistent false sharing with t{a.tid}:{a.seq} on line "
                f"0x{line * 64:x}: disjoint bytes, but unsynchronized "
                f"same-line persists serialize on the media and couple the "
                f"threads' persist ordering",
            )
        )


# ----------------------------------------------------------------------
# check 4: over-serialization lint (advisory)
# ----------------------------------------------------------------------


@dataclass
class _SerialScan:
    clean_lines: Set[int] = field(default_factory=set)
    touched_lines: Set[int] = field(default_factory=set)
    last_fence: Optional[Op] = None
    persist_since_fence: bool = True
    stores_since_barrier: int = 0


def _check_over_serialization(
    eff: EffectiveProgram, sem: DesignSemantics, report: AnalysisReport
) -> None:
    fence_kinds = sem.barrier_kinds | sem.drain_kinds
    pure_barriers = sem.barrier_kinds - sem.drain_kinds
    for tid in range(eff.n_threads):
        st = _SerialScan()
        for op in eff.thread_ops(tid):
            kind = op.kind
            if kind is OpKind.STORE:
                for line in lines_of(op.addr, op.size):
                    st.clean_lines.discard(line)
                    st.touched_lines.add(line)
                st.persist_since_fence = True
                st.stores_since_barrier += 1
            elif kind is OpKind.CLWB:
                lines = lines_of(op.addr, op.size)
                known = [ln for ln in lines if ln in st.touched_lines]
                if known and all(ln in st.clean_lines for ln in known):
                    report.add(
                        Diagnostic.at(
                            op,
                            OVER_SERIALIZATION,
                            "redundant-flush",
                            Severity.ADVICE,
                            f"CLWB of line 0x{lines[0] * 64:x} is redundant: "
                            f"the line was already written back and not "
                            f"re-dirtied since",
                            estimated_waste=1,
                        )
                    )
                st.clean_lines.update(lines)
                st.touched_lines.update(lines)
                st.persist_since_fence = True
            elif kind in fence_kinds:
                if st.last_fence is not None and not st.persist_since_fence:
                    report.add(
                        Diagnostic.at(
                            op,
                            OVER_SERIALIZATION,
                            "back-to-back-fence",
                            Severity.ADVICE,
                            f"{kind.name} immediately follows the "
                            f"{st.last_fence.kind.name} at "
                            f"t{st.last_fence.tid}:{st.last_fence.seq} with no "
                            f"persist between them: it orders nothing",
                            estimated_waste=1,
                        )
                    )
                if kind in pure_barriers and st.stores_since_barrier == 0:
                    report.add(
                        Diagnostic.at(
                            op,
                            OVER_SERIALIZATION,
                            "empty-barrier",
                            Severity.ADVICE,
                            f"{kind.name} with no persist behind it on the "
                            f"current strand: the barrier creates no ordering "
                            f"edge",
                            estimated_waste=1,
                        )
                    )
                st.last_fence = op
                st.persist_since_fence = False
                st.stores_since_barrier = 0
            elif kind is OpKind.NEW_STRAND:
                st.stores_since_barrier = 0


# ----------------------------------------------------------------------
# check 5: torn-write hazards
# ----------------------------------------------------------------------


def _check_torn_writes(program: Program, report: AnalysisReport) -> None:
    for trace in program.threads:
        for op in trace.ops:
            if op.kind is not OpKind.STORE:
                continue
            lines = lines_of(op.addr, op.size)
            if len(lines) > 1 and op.region < 0:
                report.add(
                    Diagnostic.at(
                        op,
                        TORN_WRITE,
                        "multi-line-store",
                        Severity.WARNING,
                        f"{op.size}-byte store spans {len(lines)} cache lines "
                        f"outside any failure-atomic region: PM persists at "
                        f"line granularity, so a crash between the line "
                        f"persists tears the write",
                    )
                )
